// Layer-by-layer unit tests: hand cases plus finite-difference gradient
// checks for every trainable layer.

#include <gtest/gtest.h>

#include "src/conv/reference.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/loss.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

TEST(ReluLayer, ForwardClampsNegatives) {
  Relu relu;
  tensor::Tensor in({4});
  in.at(0) = -1;
  in.at(1) = 0;
  in.at(2) = 2;
  in.at(3) = -0.5;
  const tensor::Tensor out = relu.forward(in);
  EXPECT_EQ(out.at(0), 0);
  EXPECT_EQ(out.at(1), 0);
  EXPECT_EQ(out.at(2), 2);
  EXPECT_EQ(out.at(3), 0);
}

TEST(ReluLayer, BackwardMasksGradient) {
  Relu relu;
  tensor::Tensor in({3});
  in.at(0) = -1;
  in.at(1) = 3;
  in.at(2) = 0;
  relu.forward(in);
  tensor::Tensor g({3});
  g.fill(5.0);
  const tensor::Tensor din = relu.backward(g);
  EXPECT_EQ(din.at(0), 0);
  EXPECT_EQ(din.at(1), 5);
  EXPECT_EQ(din.at(2), 0);
}

TEST(ReluLayer, BackwardBeforeForwardThrows) {
  Relu relu;
  tensor::Tensor g({3});
  EXPECT_THROW(relu.backward(g), std::invalid_argument);
}

TEST(Pooling, ForwardTakesWindowMax) {
  MaxPooling pool(2);
  tensor::Tensor in({2, 2, 1, 1});
  in.at(0, 0, 0, 0) = 1;
  in.at(0, 1, 0, 0) = 4;
  in.at(1, 0, 0, 0) = 2;
  in.at(1, 1, 0, 0) = 3;
  const tensor::Tensor out = pool.forward(in);
  EXPECT_EQ(out.dims(), (std::vector<std::int64_t>{1, 1, 1, 1}));
  EXPECT_EQ(out.at(0, 0, 0, 0), 4);
}

TEST(Pooling, BackwardRoutesToArgmax) {
  MaxPooling pool(2);
  tensor::Tensor in({2, 2, 1, 1});
  in.at(0, 1, 0, 0) = 9;
  pool.forward(in);
  tensor::Tensor g({1, 1, 1, 1});
  g.fill(3.0);
  const tensor::Tensor din = pool.backward(g);
  EXPECT_EQ(din.at(0, 1, 0, 0), 3.0);
  EXPECT_EQ(din.at(0, 0, 0, 0), 0.0);
  EXPECT_EQ(din.at(1, 0, 0, 0), 0.0);
}

TEST(Pooling, RejectsIndivisibleImage) {
  MaxPooling pool(2);
  tensor::Tensor in({3, 4, 1, 1});
  EXPECT_THROW(pool.forward(in), std::invalid_argument);
}

TEST(Pooling, RejectsBadWindow) {
  EXPECT_THROW(MaxPooling(0), std::invalid_argument);
}

TEST(SoftmaxLayer, ColumnsSumToOne) {
  tensor::Tensor logits({3, 2});
  logits.at(0, 0) = 1;
  logits.at(1, 0) = 2;
  logits.at(2, 0) = 3;
  logits.at(0, 1) = -5;
  logits.at(1, 1) = 0;
  logits.at(2, 1) = 5;
  const tensor::Tensor p = softmax_columns(logits);
  for (std::int64_t b = 0; b < 2; ++b) {
    double sum = 0;
    for (std::int64_t c = 0; c < 3; ++c) sum += p.at(c, b);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  EXPECT_GT(p.at(2, 0), p.at(0, 0));
}

TEST(SoftmaxLayer, StableForHugeLogits) {
  tensor::Tensor logits({2, 1});
  logits.at(0, 0) = 1000;
  logits.at(1, 0) = 1001;
  const tensor::Tensor p = softmax_columns(logits);
  EXPECT_NEAR(p.at(0, 0) + p.at(1, 0), 1.0, 1e-12);
  EXPECT_FALSE(std::isnan(p.at(0, 0)));
}

TEST(Loss, CrossEntropyPerfectPredictionIsNearZero) {
  tensor::Tensor logits({3, 1});
  logits.at(1, 0) = 100;
  const LossResult r = softmax_cross_entropy(logits, {1});
  EXPECT_NEAR(r.loss, 0.0, 1e-9);
  EXPECT_EQ(r.correct, 1);
}

TEST(Loss, CrossEntropyUniformIsLogC) {
  tensor::Tensor logits({4, 2});
  const LossResult r = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-12);
}

TEST(Loss, CrossEntropyGradientMatchesFiniteDifferences) {
  util::Rng rng(51);
  tensor::Tensor logits({4, 3});
  rng.fill_uniform(logits.data(), -1, 1);
  const std::vector<int> labels = {2, 0, 3};
  const LossResult r = softmax_cross_entropy(logits, labels);
  const double h = 1e-6;
  for (std::int64_t idx : {0L, 5L, 11L}) {
    tensor::Tensor plus = logits, minus = logits;
    plus.data()[idx] += h;
    minus.data()[idx] -= h;
    const double numeric = (softmax_cross_entropy(plus, labels).loss -
                            softmax_cross_entropy(minus, labels).loss) /
                           (2 * h);
    EXPECT_NEAR(r.d_logits.data()[idx], numeric, 1e-6);
  }
}

TEST(Loss, CrossEntropyRejectsBadLabel) {
  tensor::Tensor logits({3, 1});
  EXPECT_THROW(softmax_cross_entropy(logits, {3}), std::invalid_argument);
  EXPECT_THROW(softmax_cross_entropy(logits, {0, 1}), std::invalid_argument);
}

TEST(Loss, MseZeroForEqualTensors) {
  tensor::Tensor a({4}), b({4});
  a.fill(2.0);
  b.fill(2.0);
  EXPECT_DOUBLE_EQ(mean_squared_error(a, b).loss, 0.0);
}

TEST(Loss, MseGradientMatchesFiniteDifferences) {
  util::Rng rng(52);
  tensor::Tensor pred({5}), target({5});
  rng.fill_uniform(pred.data(), -1, 1);
  rng.fill_uniform(target.data(), -1, 1);
  const LossResult r = mean_squared_error(pred, target);
  const double h = 1e-6;
  tensor::Tensor plus = pred, minus = pred;
  plus.at(2) += h;
  minus.at(2) -= h;
  const double numeric = (mean_squared_error(plus, target).loss -
                          mean_squared_error(minus, target).loss) /
                         (2 * h);
  EXPECT_NEAR(r.d_logits.at(2), numeric, 1e-6);
}

TEST(FcLayer, ForwardIsAffine) {
  util::Rng rng(53);
  FullyConnected fc(3, 2, rng);
  tensor::Tensor x({3, 1});
  x.at(0, 0) = 1;
  x.at(1, 0) = 2;
  x.at(2, 0) = 3;
  const tensor::Tensor y = fc.forward(x);
  double expect0 = fc.bias().at(0);
  for (std::int64_t i = 0; i < 3; ++i) {
    expect0 += fc.weights().at(0, i) * x.at(i, 0);
  }
  EXPECT_NEAR(y.at(0, 0), expect0, 1e-12);
}

TEST(FcLayer, GradientsMatchFiniteDifferences) {
  util::Rng rng(54);
  FullyConnected fc(4, 3, rng);
  tensor::Tensor x({4, 2});
  rng.fill_uniform(x.data(), -1, 1);
  tensor::Tensor g({3, 2});
  rng.fill_uniform(g.data(), -1, 1);

  auto loss_of = [&](FullyConnected& layer) {
    const tensor::Tensor y = layer.forward(x);
    double loss = 0;
    for (std::int64_t i = 0; i < y.size(); ++i) {
      loss += y.data()[i] * g.data()[i];
    }
    return loss;
  };

  fc.forward(x);
  const tensor::Tensor dx = fc.backward(g);
  auto params = fc.params();
  ASSERT_EQ(params.size(), 2u);

  const double h = 1e-6;
  // Weight gradient.
  {
    const std::int64_t idx = 5;
    const double analytic = params[0].grad->data()[idx];
    const double orig = params[0].param->data()[idx];
    params[0].param->data()[idx] = orig + h;
    const double lp = loss_of(fc);
    params[0].param->data()[idx] = orig - h;
    const double lm = loss_of(fc);
    params[0].param->data()[idx] = orig;
    EXPECT_NEAR(analytic, (lp - lm) / (2 * h), 1e-6);
  }
  // Input gradient.
  {
    fc.forward(x);
    fc.backward(g);
    const double analytic = dx.at(1, 1);
    tensor::Tensor xp = x, xm = x;
    xp.at(1, 1) += h;
    xm.at(1, 1) -= h;
    const tensor::Tensor yp = fc.forward(xp);
    double lp = 0;
    for (std::int64_t i = 0; i < yp.size(); ++i) {
      lp += yp.data()[i] * g.data()[i];
    }
    const tensor::Tensor ym = fc.forward(xm);
    double lm = 0;
    for (std::int64_t i = 0; i < ym.size(); ++i) {
      lm += ym.data()[i] * g.data()[i];
    }
    EXPECT_NEAR(analytic, (lp - lm) / (2 * h), 1e-6);
  }
}

TEST(FcLayer, AcceptsRank4InputAndFlattens) {
  util::Rng rng(55);
  FullyConnected fc(2 * 2 * 3, 5, rng);
  tensor::Tensor x({2, 2, 3, 4});
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor y = fc.forward(x);
  EXPECT_EQ(y.dims(), (std::vector<std::int64_t>{5, 4}));
  const tensor::Tensor dx = fc.backward(y);
  EXPECT_EQ(dx.dims(), x.dims());
}

TEST(FcLayer, RejectsWrongFeatureCount) {
  util::Rng rng(56);
  FullyConnected fc(4, 2, rng);
  tensor::Tensor x({3, 1});
  EXPECT_THROW(fc.forward(x), std::invalid_argument);
}

TEST(ConvLayer, ForwardMatchesReferenceKernels) {
  util::Rng rng(57);
  const conv::ConvShape shape = conv::ConvShape::from_output(2, 3, 4, 4, 4, 3, 3);
  Convolution layer(shape, rng);
  tensor::Tensor x = conv::make_input(shape);
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor y = layer.forward(x);

  tensor::Tensor expected = conv::make_output(shape);
  conv::reference_forward(x, layer.filter(), expected, shape);
  EXPECT_LE(expected.max_abs_diff(y), 1e-11);
}

TEST(ConvLayer, FilterGradientMatchesFiniteDifferences) {
  util::Rng rng(58);
  const conv::ConvShape shape = conv::ConvShape::from_output(2, 2, 2, 3, 3, 2, 2);
  Convolution layer(shape, rng);
  tensor::Tensor x = conv::make_input(shape);
  rng.fill_uniform(x.data(), -1, 1);
  tensor::Tensor g = conv::make_output(shape);
  rng.fill_uniform(g.data(), -1, 1);

  layer.forward(x);
  layer.backward(g);
  auto params = layer.params();
  ASSERT_EQ(params.size(), 1u);

  auto loss_of = [&] {
    const tensor::Tensor y = layer.forward(x);
    double loss = 0;
    for (std::int64_t i = 0; i < y.size(); ++i) {
      loss += y.data()[i] * g.data()[i];
    }
    return loss;
  };
  const double h = 1e-6;
  const std::int64_t idx = 3;
  const double analytic = params[0].grad->data()[idx];
  const double orig = params[0].param->data()[idx];
  params[0].param->data()[idx] = orig + h;
  const double lp = loss_of();
  params[0].param->data()[idx] = orig - h;
  const double lm = loss_of();
  params[0].param->data()[idx] = orig;
  EXPECT_NEAR(analytic, (lp - lm) / (2 * h), 1e-6);
}

TEST(ConvLayer, SimulatedMeshBackendMatchesHostBackend) {
  util::Rng rng_a(59), rng_b(59);
  const conv::ConvShape shape = conv::ConvShape::from_output(8, 8, 8, 2, 2, 2, 2);
  Convolution host(shape, rng_a, ConvBackend::kHostIm2col);
  Convolution mesh(shape, rng_b, ConvBackend::kSimulatedMesh);
  tensor::Tensor x = conv::make_input(shape);
  util::Rng rng(60);
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor ya = host.forward(x);
  const tensor::Tensor yb = mesh.forward(x);
  EXPECT_LE(ya.max_abs_diff(yb), 1e-11);
}

TEST(ConvLayer, RejectsWrongInputShape) {
  util::Rng rng(61);
  const conv::ConvShape shape = conv::ConvShape::from_output(2, 2, 2, 3, 3, 2, 2);
  Convolution layer(shape, rng);
  tensor::Tensor bad({3, 3, 2, 2});
  EXPECT_THROW(layer.forward(bad), std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::dnn
