#include <gtest/gtest.h>

#include "src/perf/plan.h"

namespace swdnn::perf {
namespace {

conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                            std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

TEST(Plan, KindNames) {
  EXPECT_STREQ(plan_kind_name(PlanKind::kDirect), "direct");
  EXPECT_STREQ(plan_kind_name(PlanKind::kImageSizeAware), "img");
  EXPECT_STREQ(plan_kind_name(PlanKind::kBatchSizeAware), "batch");
}

TEST(Plan, ToStringIncludesBlocking) {
  ConvPlan p;
  p.kind = PlanKind::kImageSizeAware;
  p.block_b = 32;
  p.block_co = 16;
  EXPECT_EQ(p.to_string(), "img(bB=32,bCo=16)");
  p.use_register_comm = false;
  EXPECT_NE(p.to_string().find("noregcomm"), std::string::npos);
}

TEST(Plan, DirectPlanNeedsNoLdm) {
  ConvPlan p;
  p.kind = PlanKind::kDirect;
  EXPECT_EQ(ldm_bytes_required(paper_shape(128, 128), p,
                               arch::default_spec()),
            0);
}

TEST(Plan, Table3Row1FootprintFitsLdm) {
  // img, bB=32, bCo=16, Ni=No=128: the configuration the paper ran.
  ConvPlan p;
  p.kind = PlanKind::kImageSizeAware;
  p.block_b = 32;
  p.block_co = 16;
  const auto bytes =
      ldm_bytes_required(paper_shape(128, 128), p, arch::default_spec());
  EXPECT_GT(bytes, 0);
  EXPECT_LE(bytes, 64 * 1024);
  EXPECT_TRUE(plan_feasible(paper_shape(128, 128), p, arch::default_spec()));
}

TEST(Plan, OversizedImageBlockingOverflowsLdm) {
  ConvPlan p;
  p.kind = PlanKind::kImageSizeAware;
  p.block_b = 128;
  p.block_co = 64;
  EXPECT_GT(ldm_bytes_required(paper_shape(384, 384), p,
                               arch::default_spec()),
            64 * 1024);
  EXPECT_FALSE(plan_feasible(paper_shape(384, 384), p, arch::default_spec()));
}

TEST(Plan, DoubleBufferingDoublesStreamedTiles) {
  ConvPlan with, without;
  with.kind = without.kind = PlanKind::kImageSizeAware;
  with.block_b = without.block_b = 32;
  with.block_co = without.block_co = 16;
  without.double_buffer = false;
  const auto shape = paper_shape(128, 128);
  EXPECT_GT(ldm_bytes_required(shape, with, arch::default_spec()),
            ldm_bytes_required(shape, without, arch::default_spec()));
}

TEST(Plan, FilterPromotionEnlargesTheHoistedTile) {
  // Hoisting the filter DMA above the pixel loop (batch plan) keeps Kc
  // filter slices resident instead of one.
  ConvPlan base, promoted;
  base.kind = promoted.kind = PlanKind::kBatchSizeAware;
  base.block_co = promoted.block_co = 8;
  promoted.promote_filter_dma = true;
  const auto shape = paper_shape(128, 128);
  EXPECT_GT(ldm_bytes_required(shape, promoted, arch::default_spec()),
            ldm_bytes_required(shape, base, arch::default_spec()));
}

TEST(Plan, InputTileAlwaysCarriesTheColumnHalo) {
  // Algorithm 1's sliding (CoStart+cKc) window touches bCo+Kc-1 input
  // columns; a bigger filter needs a bigger input tile.
  ConvPlan p;
  p.kind = PlanKind::kImageSizeAware;
  p.block_b = 32;
  p.block_co = 16;
  EXPECT_GT(ldm_bytes_required(paper_shape(128, 128, 7), p,
                               arch::default_spec()),
            ldm_bytes_required(paper_shape(128, 128, 3), p,
                               arch::default_spec()));
}

TEST(Plan, NiBlockingShrinksTheFootprint) {
  ConvPlan full, blocked;
  full.kind = blocked.kind = PlanKind::kBatchSizeAware;
  full.block_co = blocked.block_co = 1;
  blocked.block_ni = 128;
  const auto shape = paper_shape(384, 384);
  EXPECT_LT(ldm_bytes_required(shape, blocked, arch::default_spec()),
            ldm_bytes_required(shape, full, arch::default_spec()));
}

TEST(Plan, NiBlockingMustDivideChannels) {
  ConvPlan p;
  p.kind = PlanKind::kBatchSizeAware;
  p.block_co = 1;
  p.block_ni = 100;  // does not divide 384
  EXPECT_FALSE(plan_feasible(paper_shape(384, 384), p, arch::default_spec()));
}

TEST(Plan, BatchPlanFootprintGrowsWithBlockCo) {
  ConvPlan narrow, wide;
  narrow.kind = wide.kind = PlanKind::kBatchSizeAware;
  narrow.block_co = 2;
  wide.block_co = 16;
  const auto shape = paper_shape(256, 256);
  EXPECT_GT(ldm_bytes_required(shape, wide, arch::default_spec()),
            ldm_bytes_required(shape, narrow, arch::default_spec()));
}

TEST(Plan, RegisterBlockingMustFitVectorFile) {
  ConvPlan p;
  p.kind = PlanKind::kBatchSizeAware;
  p.block_co = 4;
  p.rb_b = 16;
  p.rb_no = 4;  // 4 + 4 + 16 = 24 vector registers: fits
  EXPECT_TRUE(plan_feasible(paper_shape(128, 128), p, arch::default_spec()));
  p.rb_b = 32;
  p.rb_no = 8;  // 8 + 8 + 64: does not fit
  EXPECT_FALSE(plan_feasible(paper_shape(128, 128), p, arch::default_spec()));
}

TEST(Plan, RejectsNonVectorRegisterBlocking) {
  ConvPlan p;
  p.kind = PlanKind::kBatchSizeAware;
  p.block_co = 4;
  p.rb_b = 6;  // not a multiple of the 4-lane vector
  EXPECT_FALSE(plan_feasible(paper_shape(128, 128), p, arch::default_spec()));
}

TEST(Plan, RejectsBlockingLargerThanProblem) {
  ConvPlan p;
  p.kind = PlanKind::kImageSizeAware;
  p.block_b = 256;  // > B=128
  p.block_co = 16;
  EXPECT_FALSE(plan_feasible(paper_shape(128, 128), p, arch::default_spec()));
  p.block_b = 32;
  p.block_co = 128;  // > Co=64
  EXPECT_FALSE(plan_feasible(paper_shape(128, 128), p, arch::default_spec()));
}

}  // namespace
}  // namespace swdnn::perf
