// Strided convolutions through the host stack (the mesh kernels stay
// stride-1 per the paper; the layer stack composes strided layers from
// the im2col path).

#include <gtest/gtest.h>

#include "src/conv/backward.h"
#include "src/conv/fftconv.h"
#include "src/conv/im2col.h"
#include "src/conv/ldm_blocked.h"
#include "src/conv/reference.h"
#include "src/conv/winograd.h"
#include "src/dnn/convolution.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

TEST(StridedShape, FromOutputComputesInputSize) {
  const ConvShape s = ConvShape::from_output(2, 1, 1, 3, 4, 3, 3, 2, 2);
  EXPECT_EQ(s.ri, 2 * 2 + 3);  // (3-1)*2 + 3
  EXPECT_EQ(s.ci, 3 * 2 + 3);
  EXPECT_EQ(s.ro(), 3);
  EXPECT_EQ(s.co(), 4);
  EXPECT_NE(s.to_string().find("stride=2x2"), std::string::npos);
}

TEST(StridedShape, RejectsBadStride) {
  ConvShape s = ConvShape::from_output(1, 1, 1, 2, 2, 2, 2);
  s.stride_r = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(StridedReference, Stride2SamplesEveryOtherWindow) {
  // 5x5 input, 1x1 unit filter, stride 2: output = input[0,2,4] grid.
  ConvShape s;
  s.batch = 1;
  s.ni = s.no = 1;
  s.ri = s.ci = 5;
  s.kr = s.kc = 1;
  s.stride_r = s.stride_c = 2;
  tensor::Tensor in = make_input(s), w = make_filter(s);
  w.fill(1.0);
  for (std::int64_t r = 0; r < 5; ++r)
    for (std::int64_t c = 0; c < 5; ++c)
      in.at(r, c, 0, 0) = static_cast<double>(r * 5 + c);
  tensor::Tensor out = make_output(s);
  EXPECT_EQ(s.ro(), 3);
  reference_forward(in, w, out, s);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1, 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(out.at(1, 0, 0, 0), 10.0);
  EXPECT_DOUBLE_EQ(out.at(2, 2, 0, 0), 24.0);
}

struct StrideCase {
  ConvShape shape;
  std::string label;
};

StrideCase stc(std::int64_t b, std::int64_t ni, std::int64_t no,
               std::int64_t ro, std::int64_t co, std::int64_t k,
               std::int64_t sr, std::int64_t sc) {
  return {ConvShape::from_output(b, ni, no, ro, co, k, k, sr, sc),
          "B" + std::to_string(b) + "Ni" + std::to_string(ni) + "No" +
              std::to_string(no) + "o" + std::to_string(ro) + "x" +
              std::to_string(co) + "k" + std::to_string(k) + "s" +
              std::to_string(sr) + "x" + std::to_string(sc)};
}

class StridedPaths : public ::testing::TestWithParam<StrideCase> {};

TEST_P(StridedPaths, Im2colMatchesReference) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(121);
  tensor::Tensor in = make_input(s), w = make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(s), actual = make_output(s);
  reference_forward(in, w, expected, s);
  im2col_forward(in, w, actual, s);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-11);
}

TEST_P(StridedPaths, FftMatchesReference) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(122);
  tensor::Tensor in = make_input(s), w = make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(s), actual = make_output(s);
  reference_forward(in, w, expected, s);
  fft_conv_forward(in, w, actual, s);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-9);
}

TEST_P(StridedPaths, GradientsMatchFiniteDifferences) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(123);
  tensor::Tensor in = make_input(s), w = make_filter(s), g = make_output(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(g.data(), -1, 1);

  tensor::Tensor din = make_input(s), dw = make_filter(s);
  im2col_backward_data(g, w, din, s);
  im2col_backward_filter(in, g, dw, s);

  auto loss_of = [&](const tensor::Tensor& x, const tensor::Tensor& f) {
    tensor::Tensor out = make_output(s);
    reference_forward(x, f, out, s);
    double loss = 0;
    for (std::int64_t i = 0; i < out.size(); ++i) {
      loss += out.data()[i] * g.data()[i];
    }
    return loss;
  };
  const double h = 1e-6;
  for (std::int64_t idx : {0L, static_cast<long>(in.size() / 2)}) {
    tensor::Tensor plus = in, minus = in;
    plus.data()[idx] += h;
    minus.data()[idx] -= h;
    EXPECT_NEAR(din.data()[idx],
                (loss_of(plus, w) - loss_of(minus, w)) / (2 * h), 1e-6);
  }
  {
    const std::int64_t idx = w.size() / 2;
    tensor::Tensor plus = w, minus = w;
    plus.data()[idx] += h;
    minus.data()[idx] -= h;
    EXPECT_NEAR(dw.data()[idx],
                (loss_of(in, plus) - loss_of(in, minus)) / (2 * h), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StridedPaths,
    ::testing::Values(stc(2, 2, 3, 3, 3, 3, 2, 2), stc(1, 1, 1, 2, 4, 2, 3, 1),
                      stc(3, 2, 2, 2, 2, 3, 2, 3), stc(2, 3, 2, 4, 3, 1, 2, 2)),
    [](const ::testing::TestParamInfo<StrideCase>& info) {
      return info.param.label;
    });

TEST(StridedLayer, ConvolutionLayerTrainsWithStride2) {
  util::Rng rng(124);
  const ConvShape s = ConvShape::from_output(4, 1, 2, 3, 3, 3, 3, 2, 2);
  dnn::Convolution layer(s, rng);
  tensor::Tensor x = make_input(s);
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor y = layer.forward(x);
  EXPECT_EQ(y.dims(), (std::vector<std::int64_t>{3, 3, 2, 4}));
  tensor::Tensor g(y.dims());
  rng.fill_uniform(g.data(), -1, 1);
  const tensor::Tensor dx = layer.backward(g);
  EXPECT_EQ(dx.dims(), x.dims());
  // Gradient check on one filter element.
  auto params = layer.params();
  const double analytic = params[0].grad->data()[4];
  auto loss_of = [&] {
    const tensor::Tensor out = layer.forward(x);
    double loss = 0;
    for (std::int64_t i = 0; i < out.size(); ++i) {
      loss += out.data()[i] * g.data()[i];
    }
    return loss;
  };
  const double h = 1e-6;
  const double orig = params[0].param->data()[4];
  params[0].param->data()[4] = orig + h;
  const double lp = loss_of();
  params[0].param->data()[4] = orig - h;
  const double lm = loss_of();
  params[0].param->data()[4] = orig;
  EXPECT_NEAR(analytic, (lp - lm) / (2 * h), 1e-6);
}

TEST(StridedGuards, MeshKernelsRejectStride) {
  const ConvShape s = ConvShape::from_output(4, 2, 2, 2, 2, 3, 3, 2, 2);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kBatchSizeAware;
  plan.block_co = 2;
  EXPECT_THROW(check_mesh_compatibility(s, plan, 2), std::invalid_argument);
}

TEST(StridedGuards, WinogradRejectsStride) {
  const ConvShape s = ConvShape::from_output(1, 1, 1, 2, 2, 3, 3, 2, 2);
  tensor::Tensor in = make_input(s), w = make_filter(s), out = make_output(s);
  EXPECT_THROW(winograd_forward(in, w, out, s), std::invalid_argument);
}

TEST(StridedGuards, MeshBackwardDataRejectsStride) {
  const ConvShape s = ConvShape::from_output(4, 2, 2, 2, 2, 3, 3, 2, 2);
  SwConvolution sw;
  tensor::Tensor dout = make_output(s), w = make_filter(s),
                 din = make_input(s);
  EXPECT_THROW(swconv_backward_data(sw, dout, w, din, s),
               std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::conv
