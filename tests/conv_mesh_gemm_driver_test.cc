// The host-facing distributed GEMM driver: arbitrary shapes (including
// ragged tiles and contraction chunking) must match a host GEMM.

#include <gtest/gtest.h>

#include <vector>

#include "src/conv/mesh_gemm_driver.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

// Host oracle for out[m][n] (+)= sum_k a[k][m] * b[k][n].
std::vector<double> host_gemm_km(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 std::int64_t m, std::int64_t k,
                                 std::int64_t n,
                                 std::vector<double> init = {}) {
  std::vector<double> out =
      init.empty() ? std::vector<double>(static_cast<std::size_t>(m * n), 0.0)
                   : std::move(init);
  for (std::int64_t kk = 0; kk < k; ++kk)
    for (std::int64_t mm = 0; mm < m; ++mm)
      for (std::int64_t nn = 0; nn < n; ++nn)
        out[static_cast<std::size_t>(mm * n + nn)] +=
            a[static_cast<std::size_t>(kk * m + mm)] *
            b[static_cast<std::size_t>(kk * n + nn)];
  return out;
}

struct GemmCase {
  int mesh;
  std::int64_t m, k, n;
  std::int64_t k_chunk;  // 0 = auto
  std::string label;
};

GemmCase gc(int mesh, std::int64_t m, std::int64_t k, std::int64_t n,
            std::int64_t k_chunk = 0) {
  return {mesh, m, k, n, k_chunk,
          "mesh" + std::to_string(mesh) + "_m" + std::to_string(m) + "k" +
              std::to_string(k) + "n" + std::to_string(n) + "c" +
              std::to_string(k_chunk)};
}

class MeshGemmDriver : public ::testing::TestWithParam<GemmCase> {};

TEST_P(MeshGemmDriver, MatchesHostGemm) {
  const GemmCase& tc = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(tc.m * 131 + tc.k * 17 + tc.n));
  std::vector<double> a(static_cast<std::size_t>(tc.k * tc.m));
  std::vector<double> b(static_cast<std::size_t>(tc.k * tc.n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  std::vector<double> out(static_cast<std::size_t>(tc.m * tc.n), 99.0);

  sim::MeshExecutor exec(mesh_spec(tc.mesh));
  MeshGemmOptions opts;
  opts.k_chunk = tc.k_chunk;
  const sim::LaunchStats stats =
      mesh_gemm(exec, a, b, out, tc.m, tc.k, tc.n, opts);

  const std::vector<double> expected = host_gemm_km(a, b, tc.m, tc.k, tc.n);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], expected[i], 1e-11) << tc.label << " idx " << i;
  }
  EXPECT_GT(stats.total_flops, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshGemmDriver,
    ::testing::Values(
        // Divisible tiles.
        gc(2, 4, 4, 4), gc(2, 8, 6, 4), gc(4, 8, 8, 8),
        // Ragged in every dimension.
        gc(2, 3, 5, 7), gc(2, 1, 1, 1), gc(4, 5, 9, 6), gc(4, 7, 3, 13),
        // Dimensions smaller than the mesh.
        gc(4, 2, 2, 3), gc(8, 3, 5, 2),
        // Forced contraction chunking.
        gc(2, 4, 16, 4, 4), gc(2, 5, 23, 3, 8), gc(4, 6, 32, 6, 8)),
    [](const ::testing::TestParamInfo<GemmCase>& info) {
      return info.param.label;
    });

TEST(MeshGemmDriver, AccumulateAddsIntoExistingOutput) {
  const std::int64_t m = 5, k = 7, n = 6;
  util::Rng rng(11);
  std::vector<double> a(static_cast<std::size_t>(k * m));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  std::vector<double> init(static_cast<std::size_t>(m * n));
  rng.fill_uniform(init, -1, 1);
  std::vector<double> out = init;

  sim::MeshExecutor exec(mesh_spec(2));
  MeshGemmOptions opts;
  opts.accumulate = true;
  mesh_gemm(exec, a, b, out, m, k, n, opts);

  const std::vector<double> expected = host_gemm_km(a, b, m, k, n, init);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], expected[i], 1e-11);
  }
}

TEST(MeshGemmDriver, ChunkedEqualsUnchunked) {
  const std::int64_t m = 6, k = 24, n = 5;
  util::Rng rng(12);
  std::vector<double> a(static_cast<std::size_t>(k * m));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  sim::MeshExecutor exec(mesh_spec(2));

  std::vector<double> full(static_cast<std::size_t>(m * n), 0.0);
  mesh_gemm(exec, a, b, full, m, k, n);
  for (std::int64_t chunk : {2, 6, 8, 24}) {
    std::vector<double> chunked(static_cast<std::size_t>(m * n), 0.0);
    MeshGemmOptions opts;
    opts.k_chunk = chunk;
    mesh_gemm(exec, a, b, chunked, m, k, n, opts);
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], chunked[i], 1e-11) << "chunk=" << chunk;
    }
  }
}

TEST(MeshGemmDriver, DefaultChunkRespectsLdm) {
  const auto& spec = arch::default_spec();
  // A contraction too deep for one LDM pass must be chunked below k.
  const std::int64_t chunk = mesh_gemm_default_k_chunk(spec, 64, 100000, 64);
  EXPECT_LT(chunk, 100000);
  EXPECT_GE(chunk, 1);
  // A small problem runs in one pass.
  EXPECT_EQ(mesh_gemm_default_k_chunk(spec, 8, 16, 8), 16);
}

TEST(MeshGemmDriver, RejectsOversizedOutputTile) {
  const auto& spec = arch::default_spec();
  // m_t * n_t = (m/8)*(n/8) doubles must fit the LDM budget.
  EXPECT_THROW(mesh_gemm_default_k_chunk(spec, 8000, 8, 8000),
               std::invalid_argument);
}

TEST(MeshGemmDriver, RejectsBadArguments) {
  sim::MeshExecutor exec(mesh_spec(2));
  std::vector<double> a(4), b(4), out(4);
  EXPECT_THROW(mesh_gemm(exec, a, b, out, 0, 2, 2), std::invalid_argument);
  EXPECT_THROW(mesh_gemm(exec, a, b, out, 2, 2, 3), std::invalid_argument);
}

TEST(MeshGemmDriver, EveryCpeContributes) {
  // With tiles covering the whole mesh, total flops = P steps per CPE.
  const std::int64_t m = 8, k = 8, n = 8;
  util::Rng rng(13);
  std::vector<double> a(static_cast<std::size_t>(k * m));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  std::vector<double> out(static_cast<std::size_t>(m * n), 0.0);
  sim::MeshExecutor exec(mesh_spec(4));
  const auto stats = mesh_gemm(exec, a, b, out, m, k, n);
  // 16 CPEs x 4 mesh steps x 2*2*2*2 tile flops = padded contraction.
  EXPECT_EQ(stats.total_flops, 16u * 4u * 2u * 2u * 2u * 2u);
  EXPECT_GT(stats.regcomm_messages, 0u);
}

}  // namespace
}  // namespace swdnn::conv
