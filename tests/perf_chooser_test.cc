#include <gtest/gtest.h>

#include "src/perf/chooser.h"

namespace swdnn::perf {
namespace {

conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                            std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

TEST(Chooser, AlwaysFindsAFeasiblePlanOnThePaperGrid) {
  PlanChooser chooser;
  for (std::int64_t ni = 64; ni <= 384; ni += 64) {
    for (std::int64_t no = 64; no <= 384; no += 64) {
      EXPECT_NO_THROW({
        const PlanChoice c = chooser.choose(paper_shape(ni, no));
        EXPECT_GT(c.estimate.gflops_per_cg, 0.0);
      }) << ni << "x" << no;
    }
  }
}

TEST(Chooser, RankIsSortedByEstimate) {
  PlanChooser chooser;
  const auto ranked = chooser.rank(paper_shape(128, 128));
  ASSERT_GE(ranked.size(), 2u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].estimate.gflops_per_cg,
              ranked[i].estimate.gflops_per_cg);
  }
}

TEST(Chooser, EveryRankedPlanFitsLdm) {
  PlanChooser chooser;
  for (const auto& choice : chooser.rank(paper_shape(384, 384))) {
    EXPECT_TRUE(
        plan_feasible(paper_shape(384, 384), choice.plan,
                      arch::default_spec()))
        << choice.plan.to_string();
  }
}

TEST(Chooser, LargeChannelsPreferBatchPlan) {
  // At Ni=No=384 the image plan's LDM budget forces tiny bCo*bB and a
  // huge RBW; Table III shows the authors switching to the batch plan
  // for 256/384 channels.
  PlanChooser chooser;
  const PlanChoice c = chooser.choose(paper_shape(384, 384));
  EXPECT_EQ(c.plan.kind, PlanKind::kBatchSizeAware);
}

TEST(Chooser, ChosenPlanBeatsTheWorstByAMargin) {
  PlanChooser chooser;
  const auto ranked = chooser.rank(paper_shape(256, 256));
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_GT(ranked.front().estimate.gflops_per_cg,
            ranked.back().estimate.gflops_per_cg * 1.2);
}

TEST(Chooser, EstimatesAreStableAcrossTheSweep) {
  // Section VII: "our program is stable under different parameter
  // configurations" — the chosen-plan estimate should not swing wildly
  // between adjacent channel configurations.
  PlanChooser chooser;
  double lo = 1e30, hi = 0;
  for (std::int64_t ch = 64; ch <= 384; ch += 32) {
    const double g = chooser.choose(paper_shape(ch, ch)).estimate.gflops_chip;
    lo = std::min(lo, g);
    hi = std::max(hi, g);
  }
  EXPECT_LT(hi / lo, 3.5);
}

TEST(Chooser, IncumbentsStillWinThePaperGrid) {
  // The multigrain mappings must not regress the paper's home turf:
  // on the well-provisioned B=128 / 64x64-output grid the chooser
  // still picks one of the paper's two blocked mappings.
  PlanChooser chooser;
  for (std::int64_t ni : {128, 256}) {
    for (std::int64_t no : {128, 256}) {
      const PlanChoice c = chooser.choose(paper_shape(ni, no));
      EXPECT_FALSE(plan_kind_is_multigrain(c.plan.kind))
          << ni << "x" << no << " -> " << c.plan.to_string();
    }
  }
}

TEST(Chooser, FilterGrainedWinsSmallImageRegimes) {
  // Tiny output images starve the incumbents' pixel blocking (bCo
  // degenerates to 1 and the RBW term explodes) while the im2col
  // lowering keeps its contraction long; the chooser must cross over.
  PlanChooser chooser;
  for (const auto& shape :
       {conv::ConvShape::from_output(8, 32, 32, 6, 6, 3, 3),
        conv::ConvShape::from_output(16, 128, 128, 6, 6, 3, 3)}) {
    const PlanChoice c = chooser.choose(shape);
    EXPECT_EQ(c.plan.kind, PlanKind::kFilterGrained) << shape.to_string();
  }
}

TEST(Chooser, EmitsAnInFamilyRescueCandidate) {
  // The fault ladder never crosses mapping families, so wherever a
  // filter-grained plan is ranked there must be a second one with a
  // different resolved pixel block for the ladder to fall back to.
  PlanChooser chooser;
  const auto shape = conv::ConvShape::from_output(8, 32, 32, 6, 6, 3, 3);
  const auto ranked = chooser.rank(shape);
  std::vector<std::int64_t> fg_blocks;
  for (const PlanChoice& c : ranked) {
    if (c.plan.kind == PlanKind::kFilterGrained) {
      fg_blocks.push_back(
          filter_grained_block_px(shape, c.plan, arch::default_spec()));
    }
  }
  ASSERT_GE(fg_blocks.size(), 2u);
  EXPECT_NE(fg_blocks[0], fg_blocks[1]);
}

TEST(Chooser, ThrowsWhenNoCandidateDivides) {
  // A batch too small to tile and an output width of 1 leave no valid
  // image plan, but the batch plan with bCo=... still works; craft a
  // genuinely impossible case via zero-feasible LDM by a giant Ni with
  // tiny everything else being still feasible -> instead check small
  // shapes DO work (the chooser's fallback guarantee).
  PlanChooser chooser;
  const auto tiny = conv::ConvShape::from_output(4, 8, 8, 2, 2, 1, 1);
  EXPECT_NO_THROW(chooser.choose(tiny));
}

}  // namespace
}  // namespace swdnn::perf
