// Schedule autotuner: the tuned plan never scores below the baseline
// (the default schedule is in the search space, ties keep it), tuning
// varies schedule-only knobs and preserves ranking order so the cached
// executability indices stay valid, and SwConvolution::autotune_plan is
// idempotent and counter-neutral at the plan cache.

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "src/conv/swconv.h"
#include "src/perf/autotune.h"
#include "src/perf/chooser.h"

namespace swdnn::perf {
namespace {

conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                            std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

TEST(Autotune, TunedPlanNeverScoresBelowBaseline) {
  PlanChooser chooser;
  ScheduleAutotuner tuner;
  for (std::int64_t ch = 64; ch <= 384; ch += 64) {
    const conv::ConvShape shape = paper_shape(ch, ch);
    const auto ranked = chooser.rank(shape);
    ASSERT_FALSE(ranked.empty());
    AutotuneReport report;
    const auto tuned = tuner.tune_ranked(shape, ranked, &report);
    ASSERT_EQ(tuned.size(), ranked.size());
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      EXPECT_GE(tuned[i].estimate.gflops_per_cg,
                ranked[i].estimate.gflops_per_cg)
          << "entry " << i << " of " << shape.to_string();
    }
    EXPECT_GE(report.speedup(), 1.0);
    EXPECT_GT(report.candidates_scored, 0u);
  }
}

TEST(Autotune, TuningIsScheduleOnlyAndPreservesOrder) {
  // Tuning may change register blocking and DMA promotion — the knobs
  // the functional kernels never read — but never the plan kind or the
  // LDM blocking (which DO steer functional tiling), and never the
  // position of an entry in the ranking.
  PlanChooser chooser;
  ScheduleAutotuner tuner;
  const conv::ConvShape shape = paper_shape(256, 256);
  const auto ranked = chooser.rank(shape);
  const auto tuned = tuner.tune_ranked(shape, ranked);
  ASSERT_EQ(tuned.size(), ranked.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    EXPECT_EQ(tuned[i].plan.kind, ranked[i].plan.kind) << i;
    EXPECT_EQ(tuned[i].plan.block_b, ranked[i].plan.block_b) << i;
    EXPECT_EQ(tuned[i].plan.block_co, ranked[i].plan.block_co) << i;
    EXPECT_EQ(tuned[i].plan.block_ni, ranked[i].plan.block_ni) << i;
    EXPECT_TRUE(plan_feasible(shape, tuned[i].plan, arch::default_spec()))
        << tuned[i].plan.to_string();
  }
}

TEST(Autotune, TuneChoiceKeepsDefaultOnTies) {
  // A candidate must score STRICTLY better to displace the base plan,
  // so re-tuning an already-tuned winner is a fixed point.
  PlanChooser chooser;
  ScheduleAutotuner tuner;
  const conv::ConvShape shape = paper_shape(128, 128);
  const PlanChoice base = chooser.choose(shape);
  const PlanChoice tuned = tuner.tune_choice(shape, base);
  const PlanChoice retuned = tuner.tune_choice(shape, tuned);
  EXPECT_EQ(retuned.plan.rb_b, tuned.plan.rb_b);
  EXPECT_EQ(retuned.plan.rb_no, tuned.plan.rb_no);
  EXPECT_EQ(retuned.plan.promote_input_dma, tuned.plan.promote_input_dma);
  EXPECT_EQ(retuned.plan.promote_filter_dma, tuned.plan.promote_filter_dma);
  EXPECT_EQ(retuned.estimate.gflops_per_cg, tuned.estimate.gflops_per_cg);
}

TEST(Autotune, SwConvolutionInstallIsIdempotentAndCounterNeutral) {
  conv::SwConvolution sw;
  const conv::ConvShape shape = paper_shape(128, 128);

  const auto first = sw.autotune_plan(shape);
  ASSERT_TRUE(first.has_value());
  EXPECT_GE(first->speedup(), 1.0);
  EXPECT_GT(first->candidates_scored, 0u);

  // Second tune of the same shape: no work, no report.
  const auto second = sw.autotune_plan(shape);
  EXPECT_FALSE(second.has_value());

  // Tuning rides peek/warm/install only: the serve-time ledger is
  // untouched.
  const PlanCacheStats stats = sw.plan_cache_stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);

  // The installed ranking actually serves the tuned winner.
  const auto served = sw.ranked_plans(shape);
  ASSERT_FALSE(served.entry->ranked.empty());
  EXPECT_EQ(served.entry->ranked.front().plan.rb_b, first->tuned_plan.rb_b);
  EXPECT_EQ(served.entry->ranked.front().plan.rb_no, first->tuned_plan.rb_no);
}

TEST(Autotune, TunedRankingKeepsExecutableIndicesValid) {
  // A mesh-executable shape: after tuning, the cached executable index
  // list still points at mesh-executable plans (tuning upgraded entries
  // in place without reshuffling).
  conv::SwConvolution sw;
  const conv::ConvShape shape = conv::ConvShape::from_output(32, 8, 8, 8, 8,
                                                            3, 3);
  const auto before = sw.ranked_plans(shape);
  ASSERT_TRUE(before.entry->has_executable());
  const std::vector<std::size_t> exec_before = before.entry->executable;

  ASSERT_TRUE(sw.autotune_plan(shape).has_value());

  const auto after = sw.ranked_plans(shape);
  EXPECT_EQ(after.entry->executable, exec_before);
  EXPECT_EQ(after.entry->ranked.size(), before.entry->ranked.size());
  for (std::size_t i = 0; i < after.entry->ranked.size(); ++i) {
    EXPECT_EQ(after.entry->ranked[i].plan.kind,
              before.entry->ranked[i].plan.kind)
        << i;
  }
  // plan_for still resolves (identical route, now tuned).
  EXPECT_NO_THROW(sw.plan_for(shape, /*require_executable=*/true));
}

}  // namespace
}  // namespace swdnn::perf
