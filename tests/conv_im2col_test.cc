#include <gtest/gtest.h>

#include "src/conv/im2col.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

struct ShapeCase {
  ConvShape shape;
  std::string label;
};

ShapeCase sc(std::int64_t b, std::int64_t ni, std::int64_t no,
             std::int64_t ro, std::int64_t co, std::int64_t kr,
             std::int64_t kc) {
  return {ConvShape::from_output(b, ni, no, ro, co, kr, kc),
          "B" + std::to_string(b) + "Ni" + std::to_string(ni) + "No" +
              std::to_string(no) + "o" + std::to_string(ro) + "x" +
              std::to_string(co) + "k" + std::to_string(kr) + "x" +
              std::to_string(kc)};
}

class Im2colForward : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(Im2colForward, MatchesReference) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(11);
  tensor::Tensor in = make_input(s), w = make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(s), actual = make_output(s);
  reference_forward(in, w, expected, s);
  im2col_forward(in, w, actual, s);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colForward,
    ::testing::Values(sc(1, 1, 1, 2, 2, 2, 2), sc(2, 3, 4, 4, 5, 3, 3),
                      sc(4, 2, 2, 6, 3, 1, 1), sc(3, 2, 5, 3, 3, 2, 3),
                      sc(2, 4, 3, 5, 5, 5, 5), sc(8, 1, 1, 1, 1, 3, 3)),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.label;
    });

TEST(Im2col, ColumnMatrixShape) {
  const ConvShape s = ConvShape::from_output(2, 3, 4, 5, 6, 2, 3);
  const tensor::Tensor cols = im2col(make_input(s), s);
  EXPECT_EQ(cols.dim(0), 3 * 2 * 3);
  EXPECT_EQ(cols.dim(1), 5 * 6 * 2);
}

TEST(Im2col, EntriesPointIntoInput) {
  const ConvShape s = ConvShape::from_output(1, 1, 1, 2, 2, 2, 2);
  tensor::Tensor in = make_input(s);
  for (std::int64_t i = 0; i < in.size(); ++i) {
    in.data()[i] = static_cast<double>(i);
  }
  const tensor::Tensor cols = im2col(in, s);
  // Row (kr=1,kc=1), output pixel (ro=1,co=1) -> in[2][2].
  EXPECT_EQ(cols.at(3, 3), in.at(2, 2, 0, 0));
}

TEST(Im2col, Col2imIsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> — the property that makes the
  // GEMM-lowered backward-data pass correct.
  const ConvShape s = ConvShape::from_output(2, 2, 1, 3, 4, 2, 2);
  util::Rng rng(12);
  tensor::Tensor x = make_input(s);
  rng.fill_uniform(x.data(), -1, 1);
  tensor::Tensor y({s.ni * s.kr * s.kc, s.ro() * s.co() * s.batch});
  rng.fill_uniform(y.data(), -1, 1);

  const tensor::Tensor cx = im2col(x, s);
  double lhs = 0;
  for (std::int64_t i = 0; i < cx.size(); ++i) {
    lhs += cx.data()[i] * y.data()[i];
  }
  tensor::Tensor cty = make_input(s);
  col2im_add(y, cty, s);
  double rhs = 0;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    rhs += x.data()[i] * cty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

class Im2colBackward : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(Im2colBackward, DataGradientMatchesReference) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(13);
  tensor::Tensor w = make_filter(s), g = make_output(s);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(g.data(), -1, 1);
  tensor::Tensor expected = make_input(s), actual = make_input(s);
  reference_backward_data(g, w, expected, s);
  im2col_backward_data(g, w, actual, s);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-10);
}

TEST_P(Im2colBackward, FilterGradientMatchesReference) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(14);
  tensor::Tensor in = make_input(s), g = make_output(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(g.data(), -1, 1);
  tensor::Tensor expected = make_filter(s), actual = make_filter(s);
  reference_backward_filter(in, g, expected, s);
  im2col_backward_filter(in, g, actual, s);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Im2colBackward,
    ::testing::Values(sc(1, 1, 1, 2, 2, 2, 2), sc(2, 3, 4, 4, 5, 3, 3),
                      sc(4, 2, 2, 6, 3, 1, 1), sc(3, 2, 5, 3, 3, 2, 3)),
    [](const ::testing::TestParamInfo<ShapeCase>& info) {
      return info.param.label;
    });

TEST(Im2col, FilterMatrixLayout) {
  const ConvShape s = ConvShape::from_output(1, 2, 3, 2, 2, 2, 2);
  tensor::Tensor w = make_filter(s);
  w.at(1, 0, 1, 2) = 5.0;  // kr=1, kc=0, ni=1, no=2
  const tensor::Tensor m = filter_matrix(w, s);
  EXPECT_EQ(m.at(2, (1 * 2 + 1) * 2 + 0), 5.0);
}

}  // namespace
}  // namespace swdnn::conv
