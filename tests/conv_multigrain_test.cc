// The multigrain mapping family (filter-grained / pixel-grained mesh
// lowerings, DESIGN.md §16): bitwise identity with the reference on
// the ragged / small-channel / large-filter shapes the incumbents
// cannot map, multi-CG partitioning, the backward paths that ride on
// the forward kernels, the refuse-to-map -> host fallback, and the
// measured-autotune confirmation protocol.

#include <gtest/gtest.h>

#include "src/api/swdnn_api.h"
#include "src/conv/backward.h"
#include "src/conv/im2col.h"
#include "src/conv/multigrain.h"
#include "src/conv/reference.h"
#include "src/conv/swconv.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

struct Problem {
  tensor::Tensor in, w, reference;
  explicit Problem(const ConvShape& shape, unsigned seed = 99)
      : in(make_input(shape)), w(make_filter(shape)),
        reference(make_output(shape)) {
    util::Rng rng(seed);
    rng.fill_uniform(in.data(), -1, 1);
    rng.fill_uniform(w.data(), -1, 1);
    reference_forward(in, w, reference, shape);
  }
};

// Ragged, small-channel, and large-filter shapes: none of them divide
// an 8x8 mesh the way the paper's blocked mappings demand.
const ConvShape kRaggedShapes[] = {
    ConvShape::from_output(8, 32, 32, 6, 6, 3, 3),    // tiny image
    ConvShape::from_output(3, 5, 7, 4, 6, 3, 3),      // everything ragged
    ConvShape::from_output(2, 3, 8, 5, 5, 2, 2),      // tiny channels
    ConvShape::from_output(4, 8, 16, 4, 4, 7, 7),     // filter ~ image
    ConvShape::from_output(1, 16, 8, 3, 3, 5, 5),     // single sample
};

TEST(Multigrain, FilterGrainedBitwiseAcrossRaggedShapes) {
  sim::MeshExecutor exec;  // full 8x8 mesh
  for (const ConvShape& shape : kRaggedShapes) {
    SCOPED_TRACE(shape.to_string());
    perf::ConvPlan plan;
    plan.kind = perf::PlanKind::kFilterGrained;
    ASSERT_TRUE(perf::plan_feasible(shape, plan, exec.spec()));
    Problem p(shape);
    tensor::Tensor out = make_output(shape);
    const sim::LaunchStats stats =
        run_filter_grained(exec, p.in, p.w, out, shape, plan);
    EXPECT_FALSE(stats.failed);
    // Bitwise, not close: the mapping accumulates in the reference
    // loop's (kr, kc, ni) order.
    EXPECT_EQ(p.reference.max_abs_diff(out), 0.0);
  }
}

TEST(Multigrain, PixelGrainedBitwiseAcrossRaggedShapes) {
  sim::MeshExecutor exec;
  for (const ConvShape& shape : kRaggedShapes) {
    SCOPED_TRACE(shape.to_string());
    perf::ConvPlan plan;
    plan.kind = perf::PlanKind::kPixelGrained;
    if (!perf::plan_feasible(shape, plan, exec.spec())) continue;
    Problem p(shape);
    tensor::Tensor out = make_output(shape);
    const sim::LaunchStats stats =
        run_pixel_grained(exec, p.in, p.w, out, shape, plan);
    EXPECT_FALSE(stats.failed);
    EXPECT_EQ(p.reference.max_abs_diff(out), 0.0);
  }
}

TEST(Multigrain, PixelGrainedRefusesWhenTapsOverflowLdm) {
  // Ni*No tap tiles must all stay resident: 128x128 channels at 9 taps
  // is ~2300 doubles per tap share and cannot fit; the plan must be
  // reported infeasible rather than mapped and wrong.
  const ConvShape big = ConvShape::from_output(8, 128, 512, 6, 6, 5, 5);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kPixelGrained;
  EXPECT_FALSE(perf::plan_feasible(big, plan, arch::default_spec()));
}

TEST(Multigrain, MultiCgRowPartitionsStayBitwise) {
  // The chooser picks filter-grained here; splitting output rows
  // across 4 CGs must not perturb a single bit.
  const ConvShape shape = ConvShape::from_output(8, 32, 32, 6, 6, 3, 3);
  SwConvolution sw;
  ASSERT_EQ(sw.plan_for(shape).plan.kind, perf::PlanKind::kFilterGrained);
  Problem p(shape);
  tensor::Tensor out = make_output(shape);
  const sim::MultiCgStats stats = sw.forward_multi_cg(p.in, p.w, out, shape, 4);
  EXPECT_EQ(stats.per_cg.size(), 4u);
  EXPECT_EQ(p.reference.max_abs_diff(out), 0.0);
}

TEST(Multigrain, BackwardDataRunsOnTheMultigrainRoute) {
  // backward-data is a forward convolution on transformed tensors; on
  // a ragged shape its transformed twin is mesh-executable only via
  // the multigrain family. The GEMM-lowered host gradient is the
  // oracle (itself checked against the reference loops elsewhere).
  const ConvShape shape = ConvShape::from_output(8, 32, 32, 6, 6, 3, 3);
  const ConvShape bwd = backward_data_shape(shape);
  SwConvolution sw;
  ASSERT_TRUE(perf::plan_kind_is_multigrain(sw.plan_for(bwd).plan.kind));

  util::Rng rng(7);
  tensor::Tensor in = make_input(shape), w = make_filter(shape);
  tensor::Tensor d_out = make_output(shape);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(d_out.data(), -1, 1);

  tensor::Tensor expected = make_input(shape);
  im2col_backward_data(d_out, w, expected, shape);

  tensor::Tensor d_in = make_input(shape);
  const ForwardResult result = swconv_backward_data(sw, d_out, w, d_in, shape);
  EXPECT_TRUE(perf::plan_kind_is_multigrain(result.choice.plan.kind));
  EXPECT_LE(expected.max_abs_diff(d_in), 1e-11);
}

TEST(Multigrain, BackwardFilterMatchesTheHostGradient) {
  const ConvShape shape = ConvShape::from_output(3, 5, 7, 4, 6, 3, 3);
  util::Rng rng(8);
  tensor::Tensor in = make_input(shape), d_out = make_output(shape);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(d_out.data(), -1, 1);

  tensor::Tensor expected = make_filter(shape);
  im2col_backward_filter(in, d_out, expected, shape);

  sim::MeshExecutor exec;
  tensor::Tensor d_w = make_filter(shape);
  mesh_backward_filter(exec, in, d_out, d_w, shape);
  EXPECT_LE(expected.max_abs_diff(d_w), 1e-11);
}

TEST(Multigrain, RefuseToMapThrowsForTheHostLadder) {
  // Ni=3 blocks every channel-blocked plan and No=4096 overflows the
  // multigrain tile sets on a 2x2 mesh (per-CPE output-channel share =
  // 2048 doubles before any input or filter tile): nothing is
  // mesh-executable, and the facade must say so (the API layer catches
  // this and takes the host route).
  const ConvShape unmappable = ConvShape::from_output(2, 3, 4096, 3, 3, 2, 2);
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = 2;
  spec.mesh_cols = 2;
  SwConvolution sw(spec);
  const auto lookup = sw.ranked_plans(unmappable);
  EXPECT_TRUE(lookup.entry->executable.empty());
  EXPECT_THROW(sw.plan_for(unmappable, /*require_executable=*/true),
               MeshMappingError);
}

TEST(Multigrain, MeasuredAutotuneRunsAFullFamilyTournament) {
  // The measured protocol times the model's top executable pick
  // against the best executable rival from EACH other mapping family —
  // a top-3 tournament when all three families can map the shape, as
  // here — and installs the fastest. The model is right in this regime
  // (filter-grained genuinely wins), so measurement confirms and the
  // cache serves the same winner after.
  const ConvShape shape = ConvShape::from_output(8, 32, 32, 6, 6, 3, 3);
  SwConvolution sw;
  const auto report = sw.autotune_plan_measured(shape);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->candidates.size(), 3u);
  // One candidate per family, every launch genuinely timed.
  EXPECT_NE(perf::plan_kind_family(report->candidates[0].plan.kind),
            perf::plan_kind_family(report->candidates[1].plan.kind));
  EXPECT_NE(perf::plan_kind_family(report->candidates[0].plan.kind),
            perf::plan_kind_family(report->candidates[2].plan.kind));
  EXPECT_NE(perf::plan_kind_family(report->candidates[1].plan.kind),
            perf::plan_kind_family(report->candidates[2].plan.kind));
  for (const auto& c : report->candidates) {
    EXPECT_GT(c.measured_seconds, 0.0);
    EXPECT_GT(c.measured_gflops, 0.0);
  }
  EXPECT_FALSE(report->reordered);
  EXPECT_EQ(report->winner_index, 0u);
  const auto& winner = report->candidates[report->winner_index];
  EXPECT_EQ(winner.plan.kind, perf::PlanKind::kFilterGrained);
  // The tournament winner measured no slower than every rival.
  for (const auto& c : report->candidates) {
    EXPECT_LE(winner.measured_seconds, c.measured_seconds);
  }
  EXPECT_EQ(sw.plan_for(shape).plan.to_string(), winner.plan.to_string());
  // Second call: the shape is already tuned, the protocol is a no-op.
  EXPECT_FALSE(sw.autotune_plan_measured(shape).has_value());
}

TEST(Multigrain, MeasuredTournamentShrinksWhenAFamilyCannotMap) {
  // Ni=3 rules out the channel-blocked incumbent plans, so the field
  // is the two multigrain families only — the tournament degrades to
  // the old two-candidate duel instead of inventing a third entry.
  const ConvShape shape = ConvShape::from_output(3, 3, 5, 6, 6, 3, 3);
  SwConvolution sw;
  const auto lookup = sw.ranked_plans(shape);
  ASSERT_GE(lookup.entry->executable.size(), 2u);
  const auto report = sw.autotune_plan_measured(shape);
  ASSERT_TRUE(report.has_value());
  ASSERT_EQ(report->candidates.size(), 2u);
  for (const auto& c : report->candidates) {
    EXPECT_TRUE(perf::plan_kind_is_multigrain(c.plan.kind));
  }
  EXPECT_NE(perf::plan_kind_family(report->candidates[0].plan.kind),
            perf::plan_kind_family(report->candidates[1].plan.kind));
  // Whatever won, the cache serves it.
  const auto& winner = report->candidates[report->winner_index];
  EXPECT_EQ(sw.plan_for(shape).plan.to_string(), winner.plan.to_string());
}

TEST(Multigrain, PlanFamiliesPartitionTheKinds) {
  using perf::PlanFamily;
  using perf::PlanKind;
  EXPECT_EQ(perf::plan_kind_family(PlanKind::kDirect),
            PlanFamily::kIncumbent);
  EXPECT_EQ(perf::plan_kind_family(PlanKind::kImageSizeAware),
            PlanFamily::kIncumbent);
  EXPECT_EQ(perf::plan_kind_family(PlanKind::kBatchSizeAware),
            PlanFamily::kIncumbent);
  EXPECT_EQ(perf::plan_kind_family(PlanKind::kFilterGrained),
            PlanFamily::kFilterGrained);
  EXPECT_EQ(perf::plan_kind_family(PlanKind::kPixelGrained),
            PlanFamily::kPixelGrained);
  EXPECT_STREQ(perf::plan_family_name(PlanFamily::kIncumbent), "incumbent");
  EXPECT_STREQ(perf::plan_family_name(PlanFamily::kFilterGrained), "fgrain");
  EXPECT_STREQ(perf::plan_family_name(PlanFamily::kPixelGrained), "pgrain");
}

}  // namespace
}  // namespace swdnn::conv
