#include <gtest/gtest.h>

#include "src/perf/k40m.h"

namespace swdnn::perf {
namespace {

conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                            std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

TEST(K40m, EfficiencyNeverExceedsPublishedBest) {
  // "the best efficiency on K40m is around 40%."
  K40mCudnnModel model;
  for (std::int64_t ni = 64; ni <= 384; ni += 16) {
    for (std::int64_t no = 64; no <= 384; no += 16) {
      EXPECT_LE(model.efficiency(paper_shape(ni, no)), 0.42);
      EXPECT_GE(model.efficiency(paper_shape(ni, no)), 0.04);
    }
  }
}

TEST(K40m, BestEfficiencyIsNear40PercentOnAlignedChannels) {
  K40mCudnnModel model;
  double best = 0;
  for (std::int64_t ch : {128, 256, 384}) {
    best = std::max(best, model.efficiency(paper_shape(ch, ch)));
  }
  EXPECT_GT(best, 0.30);
  EXPECT_LE(best, 0.42);
}

TEST(K40m, UnalignedChannelsDegrade) {
  K40mCudnnModel model;
  // Average over the No axis to wash out the per-shape jitter.
  auto mean_eff = [&model](std::int64_t ni) {
    double sum = 0;
    int n = 0;
    for (std::int64_t no = 64; no <= 384; no += 64, ++n) {
      sum += model.efficiency(paper_shape(ni, no));
    }
    return sum / n;
  };
  EXPECT_GT(mean_eff(128), mean_eff(136));
}

TEST(K40m, LargeFiltersCollapse) {
  // Fig. 9: the cuDNN series falls with filter size while swDNN holds.
  K40mCudnnModel model;
  const double at3 = model.conv_gflops(paper_shape(256, 256, 3));
  const double at11 = model.conv_gflops(paper_shape(256, 256, 11));
  const double at21 = model.conv_gflops(paper_shape(256, 256, 21));
  EXPECT_GT(at3, at11);
  EXPECT_GT(at11, at21);
  EXPECT_LT(at21, at3 / 2.0);
}

TEST(K40m, Deterministic) {
  K40mCudnnModel a, b;
  const auto s = paper_shape(200, 168, 5);
  EXPECT_DOUBLE_EQ(a.conv_gflops(s), b.conv_gflops(s));
}

TEST(K40m, JitterMakesSeriesJagged) {
  // Neighbouring configurations should not form a smooth curve (cuDNN's
  // kernel-selection instability).
  K40mCudnnModel model;
  int direction_changes = 0;
  double prev = model.conv_gflops(paper_shape(64, 64));
  double prev_delta = 0;
  for (std::int64_t ch = 80; ch <= 384; ch += 16) {
    const double cur = model.conv_gflops(paper_shape(ch, ch));
    const double delta = cur - prev;
    if (delta * prev_delta < 0) ++direction_changes;
    prev_delta = delta;
    prev = cur;
  }
  EXPECT_GE(direction_changes, 3);
}

TEST(K40m, ThroughputIsEfficiencyTimesBoostPeak) {
  K40mCudnnModel model;
  const auto s = paper_shape(128, 128);
  EXPECT_NEAR(model.conv_gflops(s),
              model.efficiency(s) * model.spec().dp_boost_gflops, 1e-9);
}

}  // namespace
}  // namespace swdnn::perf
