// The frequency-domain substrate and the Section III-C rejection
// argument: FFT correctness, FFT-based convolution vs the reference,
// and the bandwidth roofline that rules the method out on SW26010.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "src/conv/fftconv.h"
#include "src/perf/chooser.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

using Cplx = std::complex<double>;

TEST(Fft, ImpulseTransformsToAllOnes) {
  std::vector<Cplx> data(8, Cplx(0, 0));
  data[0] = Cplx(1, 0);
  fft_inplace(data, false);
  for (const Cplx& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, ConstantTransformsToDcBin) {
  std::vector<Cplx> data(8, Cplx(2.0, 0));
  fft_inplace(data, false);
  EXPECT_NEAR(data[0].real(), 16.0, 1e-12);
  for (std::size_t i = 1; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
  }
}

TEST(Fft, RoundTripRestoresSignal) {
  util::Rng rng(21);
  for (std::size_t n : {2u, 8u, 64u, 256u}) {
    std::vector<Cplx> data(n);
    std::vector<Cplx> orig(n);
    for (std::size_t i = 0; i < n; ++i) {
      orig[i] = data[i] = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    }
    fft_inplace(data, false);
    fft_inplace(data, true);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(data[i] - orig[i]), 0.0, 1e-10) << "n=" << n;
    }
  }
}

TEST(Fft, ParsevalHolds) {
  util::Rng rng(22);
  std::vector<Cplx> data(64);
  double time_energy = 0;
  for (auto& v : data) {
    v = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    time_energy += std::norm(v);
  }
  fft_inplace(data, false);
  double freq_energy = 0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, 64.0 * time_energy, 1e-8);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<Cplx> data(6);
  EXPECT_THROW(fft_inplace(data, false), std::invalid_argument);
  std::vector<Cplx> empty;
  EXPECT_THROW(fft_inplace(empty, false), std::invalid_argument);
}

TEST(Fft, TwoDimensionalRoundTrip) {
  util::Rng rng(23);
  const std::int64_t n = 16;
  std::vector<Cplx> grid(static_cast<std::size_t>(n * n));
  std::vector<Cplx> orig(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    orig[i] = grid[i] = Cplx(rng.uniform(-1, 1), 0);
  }
  fft2d_inplace(grid, n, false);
  fft2d_inplace(grid, n, true);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_NEAR(std::abs(grid[i] - orig[i]), 0.0, 1e-10);
  }
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(2), 2);
  EXPECT_EQ(next_pow2(3), 4);
  EXPECT_EQ(next_pow2(64), 64);
  EXPECT_EQ(next_pow2(65), 128);
}

struct FftShape {
  ConvShape shape;
  std::string label;
};

FftShape fs(std::int64_t b, std::int64_t ni, std::int64_t no,
            std::int64_t ro, std::int64_t co, std::int64_t k) {
  return {ConvShape::from_output(b, ni, no, ro, co, k, k),
          "B" + std::to_string(b) + "Ni" + std::to_string(ni) + "No" +
              std::to_string(no) + "o" + std::to_string(ro) + "x" +
              std::to_string(co) + "k" + std::to_string(k)};
}

class FftConv : public ::testing::TestWithParam<FftShape> {};

TEST_P(FftConv, MatchesReference) {
  const ConvShape& s = GetParam().shape;
  util::Rng rng(24);
  tensor::Tensor in = make_input(s), w = make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor expected = make_output(s), actual = make_output(s);
  reference_forward(in, w, expected, s);
  fft_conv_forward(in, w, actual, s);
  EXPECT_LE(expected.max_abs_diff(actual), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FftConv,
    ::testing::Values(fs(1, 1, 1, 3, 3, 2), fs(2, 3, 2, 4, 4, 3),
                      fs(2, 2, 3, 6, 5, 3),  // non-pow2 image, padded
                      fs(1, 2, 2, 2, 2, 5), fs(3, 1, 4, 7, 3, 2)),
    [](const ::testing::TestParamInfo<FftShape>& info) {
      return info.param.label;
    });

TEST(FftRoofline, FrequencyDomainNeedsFarMoreBandwidthThanDmaDelivers) {
  // Section III-C: "the FFT ... has higher requirements for the memory
  // bandwidth". Quantified at the paper's standard configuration: the
  // frequency-domain method demands several times the DMA interface's
  // solid-streaming peak, and ~6x the ~22 GB/s achievable in-kernel.
  const auto& spec = arch::default_spec();
  const auto shape = ConvShape::from_output(128, 128, 128, 64, 64, 3, 3);
  const double rbw = fft_required_bandwidth_gbs(shape, spec);
  EXPECT_GT(rbw, 3.0 * spec.dma_peak_bandwidth_gbs);
  EXPECT_GT(rbw, 5.0 * 22.0);
}

TEST(FftRoofline, SpatialMethodBeatsFrequencyDomainEndToEnd) {
  // The decisive comparison: modeled layer time. The FFT path has
  // fewer flops at 3x3 (the transforms amortize over B=128), but its
  // bandwidth starvation — (22/RBW)^2 of peak, the same square rule —
  // makes it slower end to end than the spatial plan the chooser picks.
  const auto& spec = arch::default_spec();
  const auto shape = ConvShape::from_output(128, 128, 128, 64, 64, 3, 3);
  const double rbw = fft_required_bandwidth_gbs(shape, spec);
  const double ratio = std::min(1.0, 22.0 / rbw);
  const double fft_gflops = spec.peak_gflops_per_cg() * ratio * ratio;
  const double fft_seconds = fft_method_flops(shape) / (fft_gflops * 1e9);

  perf::PlanChooser chooser(spec);
  const auto choice = chooser.choose(shape);
  const double spatial_seconds =
      static_cast<double>(shape.flops()) /
      (choice.estimate.gflops_per_cg * 1e9);

  EXPECT_GT(fft_seconds, 3.0 * spatial_seconds);
}

TEST(FftRoofline, SmallFiltersMakeItWorse) {
  // The FFT cost is filter-size independent while the spatial method's
  // flops shrink with k — the smaller the filter, the worse the
  // frequency-domain trade. Bandwidth demand per *useful* spatial flop:
  const auto& spec = arch::default_spec();
  const auto k3 = ConvShape::from_output(128, 128, 128, 64, 64, 3, 3);
  const auto k9 = ConvShape::from_output(128, 128, 128, 64, 64, 9, 9);
  const double per_flop_k3 =
      fft_required_bandwidth_gbs(k3, spec) * fft_method_flops(k3) /
      static_cast<double>(k3.flops());
  const double per_flop_k9 =
      fft_required_bandwidth_gbs(k9, spec) * fft_method_flops(k9) /
      static_cast<double>(k9.flops());
  EXPECT_GT(per_flop_k3, per_flop_k9);
}

TEST(FftRoofline, FlopCountScalesWithChannels) {
  const auto& spec = arch::default_spec();
  (void)spec;
  const auto small = ConvShape::from_output(128, 64, 64, 64, 64, 3, 3);
  const auto big = ConvShape::from_output(128, 256, 256, 64, 64, 3, 3);
  EXPECT_GT(fft_method_flops(big), fft_method_flops(small));
}

}  // namespace
}  // namespace swdnn::conv
