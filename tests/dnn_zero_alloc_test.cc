// Steady-state zero-allocation contract: after the first compiled step
// primes the backend's tensor pools, every subsequent forward/backward
// step mints ZERO tensors — the arena serves activations and gradients,
// the pools recycle API staging buffers, and the presized result
// members absorb the returns. tensor::allocation_count() charges every
// Tensor construction and copy (moves are free), so a flat counter
// across steps is the proof.

#include <gtest/gtest.h>

#include <memory>

#include "src/dnn/activations.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/padding.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

/// pad -> conv(+bias)+relu (fused) -> pool -> fc+tanh (fused) ->
/// softmax: every node kind the graph compiler emits, in one network.
std::unique_ptr<Network> make_cnn() {
  auto net = std::make_unique<Network>();
  util::Rng rng(71);
  conv::ConvShape shape;
  shape.batch = 4;
  shape.ni = 2;
  shape.no = 4;
  shape.ri = 10;
  shape.ci = 10;
  shape.kr = 3;
  shape.kc = 3;
  net->emplace<ZeroPad2d>(1);  // 8x8 -> 10x10
  net->emplace<Convolution>(shape, rng, ConvBackend::kHostIm2col,
                            /*with_bias=*/true);
  net->emplace<Relu>();
  net->emplace<MaxPooling>(2);  // 8x8x4 -> 4x4x4
  net->emplace<FullyConnected>(64, 10, rng);
  net->emplace<Tanh>();
  net->emplace<Softmax>();
  return net;
}

TEST(DnnZeroAlloc, SteadyStateCompiledStepMintsZeroTensors) {
  auto net = make_cnn();
  const CompiledStats& stats = net->compile({8, 8, 2, 4});
  // The graph really exercises the interesting node kinds.
  ASSERT_EQ(stats.elided_pads, 1u);
  ASSERT_EQ(stats.fused_conv_act, 1u);
  ASSERT_EQ(stats.fused_fc_act, 1u);

  tensor::Tensor input({8, 8, 2, 4});
  tensor::Tensor d_out({10, 4});
  util::Rng rng(72);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(d_out.data(), -1, 1);

  // References, not copies: a copy would charge the counter for the
  // test's own bookkeeping.
  auto step = [&] {
    const tensor::Tensor& y = net->forward(input);
    (void)y;
    const tensor::Tensor& dx = net->backward(d_out);
    (void)dx;
  };

  step();  // first step: pools fill, staging buffers are minted once
  const std::uint64_t before = tensor::allocation_count();
  for (int i = 0; i < 3; ++i) step();
  EXPECT_EQ(tensor::allocation_count() - before, 0u)
      << "a steady-state compiled step allocated tensors";
}

TEST(DnnZeroAlloc, EagerStepsKeepAllocatingForContrast) {
  // The same network through the eager escape hatch mints tensors every
  // step — the contract above is a property of the compiled path, not
  // of the counter standing still.
  auto net = make_cnn();
  net->compile({8, 8, 2, 4});
  net->set_run_eager(true);

  tensor::Tensor input({8, 8, 2, 4});
  tensor::Tensor d_out({10, 4});
  util::Rng rng(73);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(d_out.data(), -1, 1);

  net->forward(input);
  net->backward(d_out);
  const std::uint64_t before = tensor::allocation_count();
  net->forward(input);
  net->backward(d_out);
  EXPECT_GT(tensor::allocation_count() - before, 0u);
}

TEST(DnnZeroAlloc, RecompileKeepsTheContract) {
  // Re-compiling (new shape) re-plans the arena; the steady state after
  // the new first step is allocation-free again.
  auto net = make_cnn();
  net->compile({8, 8, 2, 4});
  tensor::Tensor input({8, 8, 2, 4});
  util::Rng rng(74);
  rng.fill_uniform(input.data(), -1, 1);
  net->forward(input);

  net->compile({8, 8, 2, 4});  // same dims; arena buffer is retained
  net->forward(input);
  const std::uint64_t before = tensor::allocation_count();
  net->forward(input);
  net->forward(input);
  EXPECT_EQ(tensor::allocation_count() - before, 0u);
}

}  // namespace
}  // namespace swdnn::dnn
