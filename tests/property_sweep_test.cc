// Randomized property sweeps: for dozens of random shapes, every
// implementation path must agree with the naive reference — the
// strongest statement the suite makes about functional correctness.

#include <gtest/gtest.h>

#include "src/conv/fftconv.h"
#include "src/conv/im2col.h"
#include "src/conv/ldm_blocked.h"
#include "src/conv/multigrain.h"
#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

// Draws a random mesh-2-compatible shape and blocking.
struct RandomCase {
  ConvShape shape;
  perf::ConvPlan img_plan;
  perf::ConvPlan batch_plan;
};

RandomCase draw(util::Rng& rng) {
  RandomCase rc;
  const std::int64_t k = rng.uniform_int(1, 3);
  const std::int64_t ni = 2 * rng.uniform_int(1, 3);
  const std::int64_t no = 2 * rng.uniform_int(1, 3);
  const std::int64_t ro = rng.uniform_int(1, 4);
  // Co chosen as a multiple of a random bCo.
  const std::int64_t bco = rng.uniform_int(1, 3);
  const std::int64_t co = bco * rng.uniform_int(1, 3);
  // Batch: multiple of a mesh-compatible bB.
  const std::int64_t bb = 2 * rng.uniform_int(1, 3);
  const std::int64_t batch = bb * rng.uniform_int(1, 2);
  rc.shape = ConvShape::from_output(batch, ni, no, ro, co, k, k);
  rc.img_plan.kind = perf::PlanKind::kImageSizeAware;
  rc.img_plan.block_b = bb;
  rc.img_plan.block_co = bco;
  rc.batch_plan.kind = perf::PlanKind::kBatchSizeAware;
  rc.batch_plan.block_co = bco;
  return rc;
}

TEST(PropertySweep, AllPathsAgreeOnRandomShapes) {
  util::Rng rng(20250704);
  sim::MeshExecutor exec(mesh_spec(2));
  int checked = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const RandomCase rc = draw(rng);
    SCOPED_TRACE(rc.shape.to_string());

    tensor::Tensor in = make_input(rc.shape);
    tensor::Tensor w = make_filter(rc.shape);
    rng.fill_uniform(in.data(), -1, 1);
    rng.fill_uniform(w.data(), -1, 1);

    tensor::Tensor reference = make_output(rc.shape);
    reference_forward(in, w, reference, rc.shape);

    tensor::Tensor via_im2col = make_output(rc.shape);
    im2col_forward(in, w, via_im2col, rc.shape);
    EXPECT_LE(reference.max_abs_diff(via_im2col), 1e-10);

    tensor::Tensor via_fft = make_output(rc.shape);
    fft_conv_forward(in, w, via_fft, rc.shape);
    EXPECT_LE(reference.max_abs_diff(via_fft), 1e-8);

    tensor::Tensor via_img = make_output(rc.shape);
    run_image_size_aware(exec, in, w, via_img, rc.shape, rc.img_plan);
    EXPECT_LE(reference.max_abs_diff(via_img), 1e-11);

    tensor::Tensor via_batch = make_output(rc.shape);
    run_batch_size_aware(exec, in, w, via_batch, rc.shape, rc.batch_plan);
    EXPECT_LE(reference.max_abs_diff(via_batch), 1e-11);

    // The multigrain mappings hold a stronger contract than the
    // incumbents: they accumulate in the reference loop's (kr, kc, ni)
    // order, so their outputs are bitwise equal, not merely close.
    perf::ConvPlan fg;
    fg.kind = perf::PlanKind::kFilterGrained;
    if (perf::plan_feasible(rc.shape, fg, exec.spec())) {
      tensor::Tensor via_fg = make_output(rc.shape);
      run_filter_grained(exec, in, w, via_fg, rc.shape, fg);
      EXPECT_EQ(reference.max_abs_diff(via_fg), 0.0);
    }
    perf::ConvPlan pg;
    pg.kind = perf::PlanKind::kPixelGrained;
    if (perf::plan_feasible(rc.shape, pg, exec.spec())) {
      tensor::Tensor via_pg = make_output(rc.shape);
      run_pixel_grained(exec, in, w, via_pg, rc.shape, pg);
      EXPECT_EQ(reference.max_abs_diff(via_pg), 0.0);
    }
    ++checked;
  }
  EXPECT_EQ(checked, 25);
}

TEST(PropertySweep, ConvolutionIsTranslationEquivariant) {
  // Shifting the input by one pixel shifts the (interior of the)
  // output by one pixel — a property every path inherits from the
  // reference, checked once on it.
  const ConvShape s = ConvShape::from_output(2, 2, 2, 4, 4, 3, 3);
  util::Rng rng(4242);
  tensor::Tensor in = make_input(s);
  tensor::Tensor w = make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);

  tensor::Tensor shifted = make_input(s);
  for (std::int64_t r = 0; r + 1 < s.ri; ++r)
    for (std::int64_t c = 0; c < s.ci; ++c)
      for (std::int64_t n = 0; n < s.ni; ++n)
        for (std::int64_t b = 0; b < s.batch; ++b)
          shifted.at(r, c, n, b) = in.at(r + 1, c, n, b);

  tensor::Tensor out = make_output(s), out_shifted = make_output(s);
  reference_forward(in, w, out, s);
  reference_forward(shifted, w, out_shifted, s);
  for (std::int64_t r = 0; r + 1 < s.ro(); ++r)
    for (std::int64_t c = 0; c < s.co(); ++c)
      for (std::int64_t n = 0; n < s.no; ++n)
        for (std::int64_t b = 0; b < s.batch; ++b)
          EXPECT_NEAR(out_shifted.at(r, c, n, b), out.at(r + 1, c, n, b),
                      1e-12);
}

TEST(PropertySweep, MeshSizeDoesNotChangeTheAnswer) {
  // The same problem on 2x2, 4x4 and 8x8 meshes: identical results.
  const ConvShape s = ConvShape::from_output(8, 8, 8, 2, 2, 2, 2);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kBatchSizeAware;
  plan.block_co = 2;
  util::Rng rng(777);
  tensor::Tensor in = make_input(s);
  tensor::Tensor w = make_filter(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);

  tensor::Tensor reference = make_output(s);
  reference_forward(in, w, reference, s);
  for (int mesh : {2, 4, 8}) {
    sim::MeshExecutor exec(mesh_spec(mesh));
    tensor::Tensor out = make_output(s);
    run_batch_size_aware(exec, in, w, out, s, plan);
    EXPECT_LE(reference.max_abs_diff(out), 1e-11) << "mesh=" << mesh;
  }
}

}  // namespace
}  // namespace swdnn::conv
