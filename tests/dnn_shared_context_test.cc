// Concurrent Network::compile and compiled stepping across multiple
// networks sharing ONE BackendContext — the serving runtime's replica
// shape (and DataParallelTrainer's). A single compiled Network instance
// is not a concurrent object (its arena views are shared state), so the
// supported concurrency unit is one network per thread over a shared
// handle: one plan cache, one fault ladder, hammered from all sides.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "src/dnn/backend_context.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

constexpr std::int64_t kBatch = 2;
const std::vector<std::int64_t> kInputDims = {8, 8, 3, kBatch};

/// Host-routed CNN, identically seeded on every call so all replicas
/// (and the serial reference) share weights bitwise.
std::unique_ptr<Network> make_host_net() {
  auto net = std::make_unique<Network>();
  util::Rng rng(321);
  conv::ConvShape c;
  c.batch = kBatch;
  c.ni = 3;
  c.no = 5;
  c.ri = 8;
  c.ci = 8;
  c.kr = 3;
  c.kc = 3;
  net->emplace<Convolution>(c, rng, ConvBackend::kHostIm2col,
                            /*with_bias=*/true);
  net->emplace<Relu>();
  net->emplace<FullyConnected>(6 * 6 * 5, 10, rng);
  net->emplace<Softmax>();
  return net;
}

/// Mesh-routed single conv on the 2x2 test mesh: every forward goes
/// through the shared handle's plan cache and simulator.
std::unique_ptr<Network> make_mesh_net() {
  auto net = std::make_unique<Network>();
  util::Rng rng(654);
  net->emplace<Convolution>(conv::ConvShape::from_output(kBatch, 2, 2, 3, 4,
                                                         2, 2),
                            rng, ConvBackend::kSimulatedMesh);
  return net;
}

const std::vector<std::int64_t> kMeshInputDims = {4, 5, 2, kBatch};

tensor::Tensor make_input(const std::vector<std::int64_t>& dims,
                          std::uint64_t seed) {
  tensor::Tensor t(dims);
  util::Rng rng(seed);
  rng.fill_uniform(t.data(), -1.0, 1.0);
  return t;
}

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data().data(), b.data().data(),
                     sizeof(double) * static_cast<std::size_t>(a.size())) == 0;
}

TEST(SharedContext, ConcurrentCompileAndSteppingMatchesSerialBitwise) {
  constexpr int kNets = 4;
  constexpr int kSteps = 5;

  // Serial reference: a private network, compiled alone.
  std::vector<tensor::Tensor> inputs;
  for (int s = 0; s < kSteps; ++s) {
    inputs.push_back(make_input(kInputDims, 9000 + s));
  }
  auto reference = make_host_net();
  reference->compile(kInputDims);
  reference->set_training(false);
  std::vector<tensor::Tensor> golden;
  for (const tensor::Tensor& input : inputs) {
    golden.push_back(reference->forward(input));
  }

  // kNets threads: each COMPILES its own network against the shared
  // context concurrently with the others, then steps it. compile()
  // warm-up and stepping both dispatch through the one handle.
  BackendContext context;
  std::vector<std::vector<tensor::Tensor>> outputs(kNets);
  std::vector<std::thread> threads;
  for (int n = 0; n < kNets; ++n) {
    threads.emplace_back([&context, &inputs, &outputs, n] {
      auto net = make_host_net();
      CompileOptions options;
      options.context = &context;
      net->compile(kInputDims, options);
      net->set_training(false);
      for (const tensor::Tensor& input : inputs) {
        outputs[static_cast<std::size_t>(n)].push_back(net->forward(input));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  for (int n = 0; n < kNets; ++n) {
    ASSERT_EQ(outputs[static_cast<std::size_t>(n)].size(), golden.size());
    for (int s = 0; s < kSteps; ++s) {
      EXPECT_TRUE(bitwise_equal(
          outputs[static_cast<std::size_t>(n)][static_cast<std::size_t>(s)],
          golden[static_cast<std::size_t>(s)]))
          << "net " << n << " step " << s;
    }
  }
}

TEST(SharedContext, ConcurrentMeshNetworksShareOnePlanCache) {
  constexpr int kNets = 4;
  const arch::Sw26010Spec spec = mesh_spec(2);

  auto reference = make_mesh_net();
  CompileOptions ref_options;
  ref_options.spec = &spec;
  reference->compile(kMeshInputDims, ref_options);
  reference->set_training(false);
  const tensor::Tensor input = make_input(kMeshInputDims, 12345);
  const tensor::Tensor golden = reference->forward(input);

  BackendContext context(&spec);
  std::vector<tensor::Tensor> outputs(kNets);
  std::vector<std::thread> threads;
  for (int n = 0; n < kNets; ++n) {
    threads.emplace_back([&context, &input, &outputs, n] {
      auto net = make_mesh_net();
      CompileOptions options;
      options.context = &context;
      net->compile(kMeshInputDims, options);
      net->set_training(false);
      // Two steps: the first races the other threads' compile warm-ups
      // on the plan cache, the second hits the cached winner.
      outputs[static_cast<std::size_t>(n)] = net->forward(input);
      outputs[static_cast<std::size_t>(n)] = net->forward(input);
    });
  }
  for (std::thread& t : threads) t.join();

  // One shape, one cached winner plan: every replica's mesh result is
  // bitwise identical to the serial run.
  for (int n = 0; n < kNets; ++n) {
    EXPECT_TRUE(bitwise_equal(outputs[static_cast<std::size_t>(n)], golden))
        << "net " << n;
  }
}

}  // namespace
}  // namespace swdnn::dnn
