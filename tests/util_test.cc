#include <gtest/gtest.h>

#include "src/util/cli.h"
#include "src/util/logging.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"

namespace swdnn::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.set_header({"a", "long-name", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"1000", "x", "y"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a     long-name  c"), std::string::npos);
  EXPECT_NE(out.find("1000"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, RejectsWidthMismatch) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, HeaderlessTableRenders) {
  TextTable t;
  t.add_row({"x", "y"});
  EXPECT_NE(t.render().find("x  y"), std::string::npos);
}

TEST(Formatting, Doubles) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(742.4, 1), "742.4");
  EXPECT_EQ(fmt_speedup(1.913), "1.91x");
}

TEST(CliArgs, ParsesKeyValueAndFlags) {
  const char* argv[] = {"prog", "--batch=128", "--verbose", "positional"};
  CliArgs args(4, argv);
  EXPECT_EQ(args.get_int("batch", 0), 128);
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.get("verbose", ""), "1");
  EXPECT_FALSE(args.has("positional"));
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
}

TEST(CliArgs, StringAndDoubleValues) {
  const char* argv[] = {"prog", "--plan=batch", "--lr=0.05"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get("plan", "img"), "batch");
  EXPECT_DOUBLE_EQ(args.get_double("lr", 0.0), 0.05);
}

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 3.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= (v == 1);
    saw_hi |= (v == 4);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, FillNormalHasRoughlyRightMoments) {
  Rng rng(99);
  std::vector<double> buf(20000);
  rng.fill_normal(buf, 1.0, 2.0);
  double mean = 0;
  for (double v : buf) mean += v;
  mean /= static_cast<double>(buf.size());
  double var = 0;
  for (double v : buf) var += (v - mean) * (v - mean);
  var /= static_cast<double>(buf.size());
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Logging, LevelGateIsHonoured) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Suppressed levels must not crash and must not emit (observable only
  // as "does not blow up" here; the gate itself is the contract).
  SWDNN_LOG(kDebug) << "suppressed " << 42;
  SWDNN_LOG(kInfo) << "suppressed";
  SWDNN_LOG(kError) << "emitted to stderr during tests, by design";
  set_log_level(original);
}

TEST(Logging, StreamFormattingComposes) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);  // keep test output quiet
  SWDNN_LOG(kInfo) << "pi=" << 3.14 << " n=" << 7 << " s=" << std::string("x");
  set_log_level(original);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  const double t0 = w.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  w.reset();
  EXPECT_GE(w.elapsed_ms(), 0.0);
}

}  // namespace
}  // namespace swdnn::util
