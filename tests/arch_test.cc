// The machine description must reproduce the paper's published numbers.

#include <gtest/gtest.h>

#include "src/arch/isa.h"
#include "src/arch/spec.h"

namespace swdnn::arch {
namespace {

TEST(Spec, PeakThroughputMatchesPaper) {
  const Sw26010Spec& s = default_spec();
  EXPECT_NEAR(s.peak_gflops_per_cpe(), 11.6, 1e-9);
  EXPECT_NEAR(s.peak_gflops_per_cg(), 742.4, 1e-9);
  EXPECT_NEAR(s.peak_gflops_per_chip(), 2969.6, 1e-9);
}

TEST(Spec, Geometry) {
  const Sw26010Spec& s = default_spec();
  EXPECT_EQ(s.cpes_per_group(), 64);
  EXPECT_EQ(s.cpes_per_chip(), 256);
  EXPECT_EQ(s.num_core_groups, 4);
}

TEST(Spec, MemoryHierarchyNumbers) {
  const Sw26010Spec& s = default_spec();
  EXPECT_EQ(s.ldm_bytes, 64u * 1024u);
  EXPECT_DOUBLE_EQ(s.ldm_reg_bandwidth_gbs, 46.4);
  EXPECT_DOUBLE_EQ(s.gload_bandwidth_gbs, 8.0);
  EXPECT_EQ(s.dma_alignment_bytes, 128u);
}

TEST(Spec, DirectRequiredBandwidthIs139GBs) {
  EXPECT_NEAR(default_spec().direct_required_bandwidth_gbs(), 139.2, 1e-9);
}

TEST(Spec, FlopsPerCycleIsVectorFma) {
  EXPECT_EQ(default_spec().flops_per_cycle_per_cpe(), 8);
}

TEST(Spec, WhatIfScaling) {
  // The spec is a value type: a hypothetical machine scales derived
  // numbers consistently.
  Sw26010Spec s = default_spec();
  s.cpe_clock_ghz = 2.9;
  EXPECT_NEAR(s.peak_gflops_per_cg(), 2 * 742.4, 1e-9);
}

TEST(Isa, InstructionToString) {
  const Instruction i = make_vfmad(3, 1, 2);
  EXPECT_EQ(i.to_string(), "vfmad r3, r1, r2");
}

TEST(Isa, FmaAccumulatorReadsItsDestination) {
  const Instruction i = make_vfmad(5, 1, 2);
  EXPECT_EQ(i.dst, 5);
  EXPECT_EQ(i.src2, 5);
}

TEST(Isa, EveryOpcodeHasInfo) {
  for (int op = 0; op <= static_cast<int>(Opcode::kNop); ++op) {
    const OpInfo& info = op_info(static_cast<Opcode>(op));
    EXPECT_NE(info.mnemonic, nullptr);
    EXPECT_GE(info.latency_cycles, 1);
  }
}

}  // namespace
}  // namespace swdnn::arch
