#include <gtest/gtest.h>

#include "src/conv/shape.h"

namespace swdnn::conv {
namespace {

TEST(Shape, FromOutputComputesInputDims) {
  const ConvShape s = ConvShape::from_output(128, 64, 96, 64, 64, 3, 3);
  EXPECT_EQ(s.ri, 66);
  EXPECT_EQ(s.ci, 66);
  EXPECT_EQ(s.ro(), 64);
  EXPECT_EQ(s.co(), 64);
}

TEST(Shape, FlopCount) {
  const ConvShape s = ConvShape::from_output(2, 3, 4, 5, 6, 2, 3);
  EXPECT_EQ(s.flops(), 2 * 2 * 5 * 6 * 3 * 4 * 2 * 3);
}

TEST(Shape, ElementCounts) {
  const ConvShape s = ConvShape::from_output(2, 3, 4, 5, 6, 2, 3);
  EXPECT_EQ(s.input_elements(), 6 * 8 * 3 * 2);
  EXPECT_EQ(s.filter_elements(), 2 * 3 * 3 * 4);
  EXPECT_EQ(s.output_elements(), 5 * 6 * 4 * 2);
}

TEST(Shape, ValidationRejectsNonPositive) {
  ConvShape s;
  s.batch = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Shape, ValidationRejectsFilterLargerThanImage) {
  ConvShape s;
  s.ri = 2;
  s.ci = 2;
  s.kr = 3;
  s.kc = 1;
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(Shape, ToStringMentionsAllDims) {
  const ConvShape s = ConvShape::from_output(128, 64, 96, 64, 64, 3, 3);
  const std::string str = s.to_string();
  EXPECT_NE(str.find("B=128"), std::string::npos);
  EXPECT_NE(str.find("Ni=64"), std::string::npos);
  EXPECT_NE(str.find("No=96"), std::string::npos);
}

TEST(Shape, Equality) {
  const ConvShape a = ConvShape::from_output(8, 4, 4, 4, 4, 3, 3);
  ConvShape b = a;
  EXPECT_EQ(a, b);
  b.no = 8;
  EXPECT_NE(a, b);
}

TEST(Shape, PaperHeadlineConfigFlops) {
  // B=128, Ni=No=256, 64x64 output, 3x3: ~0.62 Tflop per layer call.
  const ConvShape s = ConvShape::from_output(128, 256, 256, 64, 64, 3, 3);
  EXPECT_NEAR(static_cast<double>(s.flops()), 6.18e11, 1e10);
}

}  // namespace
}  // namespace swdnn::conv
