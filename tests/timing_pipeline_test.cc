// Section VI: the dual-pipeline schedule simulator must reproduce the
// paper's cycle counts exactly — 26 cycles per iteration for the
// compiler's order, 5 + (n-1)*17 + 16 for the hand-reordered schedule —
// and the EE closed forms derived from them.

#include <gtest/gtest.h>

#include "src/arch/isa.h"
#include "src/timing/kernels.h"
#include "src/timing/pipeline.h"

namespace swdnn::timing {
namespace {

TEST(PipelineSim, OriginalScheduleSingleIterationTakes26Cycles) {
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate(original_stream(1));
  EXPECT_EQ(r.cycles, 26u);
  EXPECT_EQ(r.vfmad_count, 16u);
}

TEST(PipelineSim, OriginalScheduleEEMatchesPaper) {
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate(original_stream(1));
  EXPECT_NEAR(r.execution_efficiency(), 16.0 / 26.0, 1e-12);
  EXPECT_NEAR(ee_original_closed_form(), 0.615, 1e-3);
}

TEST(PipelineSim, ReorderedPrologueIs5Cycles) {
  // With a single iteration: 5-cycle prologue + 16-cycle exit body.
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate(reordered_stream(1));
  EXPECT_EQ(r.cycles, 21u);
  EXPECT_EQ(cycles_reordered_closed_form(1), 21u);
}

class ReorderedIterations : public ::testing::TestWithParam<int> {};

TEST_P(ReorderedIterations, MatchesClosedForm) {
  const int n = GetParam();
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate(reordered_stream(n));
  EXPECT_EQ(r.cycles, cycles_reordered_closed_form(n)) << "n=" << n;
  EXPECT_EQ(r.vfmad_count, static_cast<std::uint64_t>(16 * n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReorderedIterations,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32, 48, 64));

TEST(PipelineSim, SteadyStateIterationIs17Cycles) {
  DualPipelineSimulator sim;
  const auto c8 = sim.simulate(reordered_stream(8)).cycles;
  const auto c9 = sim.simulate(reordered_stream(9)).cycles;
  EXPECT_EQ(c9 - c8, 17u);
}

TEST(PipelineSim, ReorderedBeatsOriginalForAllIterationCounts) {
  DualPipelineSimulator sim;
  for (int n : {1, 2, 4, 8, 16, 48}) {
    EXPECT_LT(sim.simulate(reordered_stream(n)).cycles,
              sim.simulate(original_stream(n)).cycles)
        << "n=" << n;
  }
}

class EeClosedForm : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(EeClosedForm, SimulatedEEMatchesPaperFormula) {
  const std::int64_t ni = GetParam();
  EXPECT_NEAR(simulated_ee(ni, /*reordered=*/true),
              ee_reordered_closed_form(ni), 1e-12)
      << "Ni=" << ni;
}

INSTANTIATE_TEST_SUITE_P(ChannelSweep, EeClosedForm,
                         ::testing::Values(8, 16, 32, 64, 128, 256, 384));

TEST(PipelineSim, EEGrowsWithChannelCount) {
  // "larger Ni will get higher execution efficiency."
  double prev = 0;
  for (std::int64_t ni : {16, 32, 64, 128, 256, 384}) {
    const double ee = ee_reordered_closed_form(ni);
    EXPECT_GT(ee, prev);
    prev = ee;
  }
  // And approaches but never reaches 16/17.
  EXPECT_LT(ee_reordered_closed_form(384), 16.0 / 17.0);
  EXPECT_GT(ee_reordered_closed_form(384), 0.93);
}

TEST(PipelineSim, EEAt128ChannelsMatchesHandComputation) {
  // Ni=128 -> n=16 iterations: 256 FMAs / (5 + 15*17 + 16) = 256/276.
  EXPECT_NEAR(ee_reordered_closed_form(128), 256.0 / 276.0, 1e-12);
}

TEST(PipelineSim, DualIssueOnlyInReorderedSchedule) {
  DualPipelineSimulator sim;
  EXPECT_EQ(sim.simulate(original_stream(1)).dual_issue_cycles, 0u);
  EXPECT_GT(sim.simulate(reordered_stream(4)).dual_issue_cycles, 0u);
}

TEST(PipelineSim, EmptyStream) {
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate({});
  EXPECT_EQ(r.cycles, 0u);
  EXPECT_EQ(r.execution_efficiency(), 0.0);
}

TEST(PipelineSim, RawHazardStallsConsumer) {
  // load r1; vfmad r2 += r1*r1 — the FMA must wait out the 4-cycle
  // load-to-use latency.
  arch::InstructionStream s;
  s.push_back(arch::make_vload(1, 100));
  s.push_back(arch::make_vfmad(2, 1, 1));
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate(s);
  // load at cycle 1, ready at 5, FMA issues at 5.
  EXPECT_EQ(r.cycles, 5u);
  EXPECT_EQ(r.stall_cycles, 3u);
}

TEST(PipelineSim, IndependentLoadPairsWithFma) {
  // vfmad r2 += r0*r1 ; vload r3 — different pipelines, no hazard: one
  // cycle.
  arch::InstructionStream s;
  s.push_back(arch::make_vfmad(2, 0, 1));
  s.push_back(arch::make_vload(3, 100));
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate(s);
  EXPECT_EQ(r.cycles, 1u);
  EXPECT_EQ(r.dual_issue_cycles, 1u);
}

TEST(PipelineSim, WawHazardPreventsPairing) {
  // vfmad r2 ... ; vload r2 — WAW on r2 forbids dual issue.
  arch::InstructionStream s;
  s.push_back(arch::make_vfmad(2, 0, 1));
  s.push_back(arch::make_vload(2, 100));
  DualPipelineSimulator sim;
  EXPECT_EQ(sim.simulate(s).dual_issue_cycles, 0u);
}

TEST(PipelineSim, BranchIssuesAlone) {
  arch::InstructionStream s;
  s.push_back(arch::make_branch(40));
  s.push_back(arch::make_vload(1, 100));
  DualPipelineSimulator sim;
  const SimResult r = sim.simulate(s);
  EXPECT_EQ(r.cycles, 2u);
  EXPECT_EQ(r.dual_issue_cycles, 0u);
}

TEST(IsaTable, PipelineClassesMatchPaper) {
  using arch::Opcode;
  using arch::PipelineClass;
  EXPECT_EQ(arch::op_info(Opcode::kVfmad).pipeline, PipelineClass::kP0Only);
  EXPECT_EQ(arch::op_info(Opcode::kVload).pipeline, PipelineClass::kP1Only);
  EXPECT_EQ(arch::op_info(Opcode::kBranch).pipeline, PipelineClass::kP1Only);
  EXPECT_EQ(arch::op_info(Opcode::kPutr).pipeline, PipelineClass::kP1Only);
  EXPECT_EQ(arch::op_info(Opcode::kAddi).pipeline, PipelineClass::kEither);
}

TEST(IsaTable, LatenciesMatchPaper) {
  EXPECT_EQ(arch::op_info(arch::Opcode::kVload).latency_cycles, 4);
  EXPECT_EQ(arch::op_info(arch::Opcode::kVfmad).latency_cycles, 7);
}

}  // namespace
}  // namespace swdnn::timing
