// The DMA engine and the Table II bandwidth curve behind it.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/perf/dma_table.h"
#include "src/sim/dma.h"

namespace swdnn::sim {
namespace {

using perf::DmaDirection;

TEST(DmaTable, PublishedSamplePointsAreExact) {
  const auto& t = perf::dma_table();
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs(32, DmaDirection::kGet), 4.31);
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs(32, DmaDirection::kPut), 2.56);
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs(256, DmaDirection::kGet), 22.44);
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs(256, DmaDirection::kPut), 25.80);
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs(4096, DmaDirection::kGet), 32.05);
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs(4096, DmaDirection::kPut), 36.01);
}

TEST(DmaTable, TwelveSamplesAsPublished) {
  EXPECT_EQ(perf::dma_table().samples().size(), 12u);
}

TEST(DmaTable, InterpolatesBetweenSamples) {
  const auto& t = perf::dma_table();
  const double mid = t.bandwidth_gbs(320, DmaDirection::kGet);
  EXPECT_GT(mid, 22.44);
  EXPECT_LT(mid, 22.88);
}

TEST(DmaTable, ClampsAboveLastSample) {
  const auto& t = perf::dma_table();
  EXPECT_DOUBLE_EQ(t.bandwidth_gbs(1 << 20, DmaDirection::kPut), 36.01);
}

TEST(DmaTable, TinyBlocksScaleDown) {
  const auto& t = perf::dma_table();
  EXPECT_LT(t.bandwidth_gbs(8, DmaDirection::kGet),
            t.bandwidth_gbs(32, DmaDirection::kGet));
  EXPECT_GT(t.bandwidth_gbs(8, DmaDirection::kGet), 0.0);
}

TEST(DmaTable, PreservesPublishedNonMonotonicity) {
  // 576 B dips below 512 B in the paper's measurement; keep it.
  const auto& t = perf::dma_table();
  EXPECT_LT(t.bandwidth_gbs(576, DmaDirection::kGet),
            t.bandwidth_gbs(512, DmaDirection::kGet));
}

TEST(DmaTable, MisalignmentDerates) {
  const auto& t = perf::dma_table();
  EXPECT_LT(t.bandwidth_gbs(257, DmaDirection::kGet, false),
            t.bandwidth_gbs(257, DmaDirection::kGet, true));
}

TEST(DmaTable, MisalignmentPenaltyShrinksWithBlockSize) {
  const auto& t = perf::dma_table();
  auto ratio = [&t](std::int64_t b) {
    return t.bandwidth_gbs(b, DmaDirection::kGet, false) /
           t.bandwidth_gbs(b, DmaDirection::kGet, true);
  };
  EXPECT_LT(ratio(96), ratio(2000));
}

TEST(DmaTable, PeakMatchesPaperHeadline) {
  // "effective bandwidth for DMA load and store ranges from 4 GB/s to
  // 36 GB/s."
  EXPECT_NEAR(perf::dma_table().peak_gbs(DmaDirection::kPut), 36.01, 1e-9);
  EXPECT_NEAR(perf::dma_table().peak_gbs(DmaDirection::kGet), 32.05, 1e-9);
}

TEST(DmaEngine, AccountsBytesAndRequests) {
  const auto& spec = arch::default_spec();
  DmaEngine dma(spec);
  dma.record(1024, 1024, DmaDirection::kGet, true);
  dma.record(512, 512, DmaDirection::kPut, true);
  dma.record(100, 100, DmaDirection::kGet, false);
  const DmaTotals t = dma.totals();
  EXPECT_EQ(t.get_bytes, 1124u);
  EXPECT_EQ(t.put_bytes, 512u);
  EXPECT_EQ(t.requests, 3u);
  EXPECT_EQ(t.misaligned_requests, 1u);
}

TEST(DmaEngine, CyclesFollowBandwidth) {
  const auto& spec = arch::default_spec();
  DmaEngine dma(spec);
  // 29.79 GB/s at 1024 B blocks: 1 MB should take ~33.6 us.
  const std::uint64_t bytes = 1 << 20;
  dma.record(bytes, 1024, DmaDirection::kGet, true);
  EXPECT_NEAR(dma.modeled_seconds(), bytes / 29.79e9, 1e-7);
}

TEST(DmaEngine, SmallBlocksCostMoreTime) {
  const auto& spec = arch::default_spec();
  DmaEngine small(spec), big(spec);
  small.record(1 << 16, 64, DmaDirection::kGet, true);
  big.record(1 << 16, 4096, DmaDirection::kGet, true);
  EXPECT_GT(small.modeled_seconds(), big.modeled_seconds());
}

TEST(DmaEngine, ZeroBandwidthSaturatesInsteadOfUndefinedBehaviour) {
  // Regression: bytes / 0.0 produced inf, and casting inf to uint64_t
  // is UB. A zero-bandwidth edge (fault plan, corrupted table) must
  // yield the defined saturating cost.
  EXPECT_EQ(DmaEngine::cost_cycles(1024, 0.0, 1.45),
            DmaEngine::kSaturatedCycles);
  EXPECT_EQ(DmaEngine::cost_cycles(0, 0.0, 1.45),
            DmaEngine::kSaturatedCycles);
}

TEST(DmaEngine, NegativeAndNanBandwidthSaturate) {
  EXPECT_EQ(DmaEngine::cost_cycles(1024, -3.0, 1.45),
            DmaEngine::kSaturatedCycles);
  EXPECT_EQ(DmaEngine::cost_cycles(1024, std::nan(""), 1.45),
            DmaEngine::kSaturatedCycles);
}

TEST(DmaEngine, OverflowingCycleCountsClampToSaturation) {
  // A finite but astronomically slow transfer must clamp, not wrap.
  EXPECT_EQ(DmaEngine::cost_cycles(UINT64_MAX, 1e-12, 1000.0),
            DmaEngine::kSaturatedCycles);
}

TEST(DmaEngine, InfiniteBandwidthIsFree) {
  EXPECT_EQ(DmaEngine::cost_cycles(1 << 20,
                                   std::numeric_limits<double>::infinity(),
                                   1.45),
            0u);
}

TEST(DmaEngine, CostCyclesMatchesTheBandwidthFormula) {
  // 1 MB at 29.79 GB/s on a 1.45 GHz clock.
  const std::uint64_t bytes = 1 << 20;
  const std::uint64_t cycles = DmaEngine::cost_cycles(bytes, 29.79, 1.45);
  EXPECT_EQ(cycles, static_cast<std::uint64_t>(
                        std::ceil(bytes / 29.79 * 1.45)));
}

}  // namespace
}  // namespace swdnn::sim
