// The shape-keyed plan cache: rank-once memoization, LRU eviction,
// counters, and concurrent lookup through one cache.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/conv/shape.h"
#include "src/perf/plan_cache.h"

namespace swdnn::perf {
namespace {

conv::ConvShape shape_with_batch(std::int64_t batch) {
  return conv::ConvShape::from_output(batch, 4, 8, 8, 8, 3, 3);
}

// A builder that tags each entry with the shape's batch so tests can
// tell entries apart, and counts how often it ran.
PlanCache::Builder counting_builder(std::atomic<int>& calls) {
  return [&calls](const conv::ConvShape& s) {
    calls.fetch_add(1);
    CachedPlan entry;
    PlanChoice choice;
    choice.plan.block_b = s.batch;  // marker
    entry.ranked.push_back(choice);
    entry.executable.push_back(0);
    return entry;
  };
}

TEST(PlanCache, BuildsOncePerShapeAndCountsHits) {
  PlanCache cache(8);
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  const conv::ConvShape shape = shape_with_batch(32);

  const auto first = cache.lookup(shape, builder);
  EXPECT_FALSE(first.hit);
  ASSERT_NE(first.entry, nullptr);
  EXPECT_TRUE(first.entry->has_executable());

  for (int i = 0; i < 4; ++i) {
    const auto again = cache.lookup(shape, builder);
    EXPECT_TRUE(again.hit);
    EXPECT_EQ(again.entry, first.entry);  // same memoized object
  }
  EXPECT_EQ(calls.load(), 1);

  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.capacity, 8u);
}

TEST(PlanCache, DistinctShapesGetDistinctEntries) {
  PlanCache cache(8);
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  const auto a = cache.lookup(shape_with_batch(4), builder);
  const auto b = cache.lookup(shape_with_batch(8), builder);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_NE(a.entry, b.entry);
  EXPECT_EQ(a.entry->best_executable().plan.block_b, 4);
  EXPECT_EQ(b.entry->best_executable().plan.block_b, 8);
}

TEST(PlanCache, EvictsLeastRecentlyUsedAtCapacity) {
  PlanCache cache(2);
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  const auto s1 = shape_with_batch(1);
  const auto s2 = shape_with_batch(2);
  const auto s3 = shape_with_batch(3);

  cache.lookup(s1, builder);
  cache.lookup(s2, builder);
  cache.lookup(s1, builder);  // refresh s1: s2 is now LRU
  cache.lookup(s3, builder);  // evicts s2

  EXPECT_NE(cache.peek(s1), nullptr);
  EXPECT_EQ(cache.peek(s2), nullptr);
  EXPECT_NE(cache.peek(s3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().entries, 2u);

  // The evicted shape rebuilds on next sight.
  const auto again = cache.lookup(s2, builder);
  EXPECT_FALSE(again.hit);
  EXPECT_EQ(calls.load(), 4);
}

TEST(PlanCache, EvictedEntriesStayValidForHolders) {
  PlanCache cache(1);
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  const auto held = cache.lookup(shape_with_batch(16), builder).entry;
  cache.lookup(shape_with_batch(32), builder);  // evicts the held entry
  EXPECT_EQ(cache.peek(shape_with_batch(16)), nullptr);
  // shared_ptr keeps the evicted plan alive for its holder.
  EXPECT_EQ(held->best_executable().plan.block_b, 16);
}

TEST(PlanCache, PeekDoesNotPerturbCountersOrLruOrder) {
  PlanCache cache(2);
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  const auto s1 = shape_with_batch(1);
  const auto s2 = shape_with_batch(2);
  cache.lookup(s1, builder);
  cache.lookup(s2, builder);
  cache.peek(s1);  // must NOT refresh s1 in the LRU order
  cache.lookup(shape_with_batch(3), builder);  // evicts true LRU = s1
  EXPECT_EQ(cache.peek(s1), nullptr);
  EXPECT_NE(cache.peek(s2), nullptr);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 3u);
}

TEST(PlanCache, ThrowingBuilderCachesNothing) {
  PlanCache cache(4);
  const conv::ConvShape shape = shape_with_batch(64);
  EXPECT_THROW(cache.lookup(shape,
                            [](const conv::ConvShape&) -> CachedPlan {
                              throw std::runtime_error("model blew up");
                            }),
               std::runtime_error);
  EXPECT_EQ(cache.peek(shape), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);

  // A later, healthy builder still gets its chance.
  std::atomic<int> calls{0};
  const auto ok = cache.lookup(shape, counting_builder(calls));
  EXPECT_FALSE(ok.hit);
  EXPECT_EQ(calls.load(), 1);
}

TEST(PlanCache, ClearDropsEntriesAndResetsCounters) {
  PlanCache cache(4);
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  cache.lookup(shape_with_batch(4), builder);
  cache.lookup(shape_with_batch(4), builder);
  cache.clear();
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(cache.peek(shape_with_batch(4)), nullptr);
}

TEST(PlanCache, ConcurrentFirstSightRanksExactlyOnce) {
  // N threads race on the same cold shape: the builder must still run
  // exactly once, and every thread must get the same entry.
  PlanCache cache(8);
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  const conv::ConvShape shape = shape_with_batch(128);

  constexpr int kThreads = 8;
  std::vector<PlanCache::Entry> seen(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int rep = 0; rep < 100; ++rep) {
        seen[t] = cache.lookup(shape, builder).entry;
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(calls.load(), 1);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, kThreads * 100u - 1u);
}

TEST(PlanCache, ConcurrentMixedShapesStayConsistent) {
  PlanCache cache(4);  // smaller than the shape set: eviction under load
  std::atomic<int> calls{0};
  const auto builder = counting_builder(calls);
  constexpr int kThreads = 8;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int rep = 0; rep < 50; ++rep) {
        const auto shape = shape_with_batch(1 + (t + rep) % 6);
        const auto got = cache.lookup(shape, builder);
        ASSERT_NE(got.entry, nullptr);
        EXPECT_EQ(got.entry->best_executable().plan.block_b,
                  shape.batch);
      }
    });
  }
  for (auto& w : workers) w.join();
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 50u);
  EXPECT_LE(stats.entries, 4u);
}

}  // namespace
}  // namespace swdnn::perf
