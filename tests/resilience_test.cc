// Self-healing training: the fault-aware ring all-reduce, losing and
// reviving ranks mid-training, and the Trainer's checkpoint/rollback
// path for corrupted or faulting steps.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <vector>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/relu.h"
#include "src/dnn/trainer.h"
#include "src/parallel/data_parallel.h"
#include "src/util/rng.h"

namespace swdnn::parallel {
namespace {

TEST(ResilientAllreduce, MatchesPlainRingOverTheSurvivors) {
  util::Rng rng(31);
  const std::size_t len = 17;
  std::vector<std::vector<double>> data(4, std::vector<double>(len));
  for (auto& d : data) rng.fill_uniform(d, -1, 1);
  std::vector<std::vector<double>> survivors = {data[0], data[1], data[3]};

  std::vector<std::span<double>> spans;
  for (auto& d : data) spans.emplace_back(d);
  ring_allreduce_resilient(spans, {true, true, false, true}, ReduceOp::kSum);

  std::vector<std::span<double>> survivor_spans;
  for (auto& d : survivors) survivor_spans.emplace_back(d);
  ring_allreduce(survivor_spans, ReduceOp::kSum);

  for (const int r : {0, 1, 3}) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_NEAR(data[static_cast<std::size_t>(r)][i], survivors[0][i],
                  1e-12)
          << "rank " << r << " i " << i;
    }
  }
}

TEST(ResilientAllreduce, AverageRescalesToLiveCountAndSkipsTheDead) {
  std::vector<std::vector<double>> data = {{2, 4}, {4, 8}, {6, 12}};
  std::vector<std::span<double>> spans;
  for (auto& d : data) spans.emplace_back(d);
  ring_allreduce_resilient(spans, {true, true, false}, ReduceOp::kAverage);
  for (const int r : {0, 1}) {
    EXPECT_NEAR(data[static_cast<std::size_t>(r)][0], 3.0, 1e-12);
    EXPECT_NEAR(data[static_cast<std::size_t>(r)][1], 6.0, 1e-12);
  }
  // The dead rank's buffer was neither read nor written.
  EXPECT_EQ(data[2][0], 6.0);
  EXPECT_EQ(data[2][1], 12.0);
}

TEST(ResilientAllreduce, ValidatesAliveMaskAndSurvivorCount) {
  std::vector<double> a(4), b(4);
  std::vector<std::span<double>> spans = {a, b};
  EXPECT_THROW(ring_allreduce_resilient(spans, {true}),
               std::invalid_argument);
  EXPECT_THROW(ring_allreduce_resilient(spans, {false, false}),
               std::invalid_argument);
}

std::unique_ptr<dnn::Network> make_net(std::int64_t batch) {
  util::Rng rng(555);  // fixed seed: replicas identical
  auto net = std::make_unique<dnn::Network>();
  net->emplace<dnn::Convolution>(
      conv::ConvShape::from_output(batch, 1, 2, 2, 2, 3, 3), rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(2 * 2 * 2, 3, rng);
  return net;
}

std::vector<dnn::Batch> make_shards(dnn::SyntheticBars& data, int nodes,
                                    std::int64_t batch) {
  std::vector<dnn::Batch> shards;
  for (int node = 0; node < nodes; ++node) shards.push_back(data.sample(batch));
  return shards;
}

TEST(DataParallelResilience, TrainingConvergesOnSurvivorsAfterAKill) {
  // The acceptance scenario: kill one rank mid-training; the ring is
  // rebuilt over the survivors, the replicas stay in lockstep, and the
  // loss keeps going down.
  DataParallelTrainer dp(3, [] { return make_net(4); }, 0.3);
  dnn::SyntheticBars data(4, 3, 0.05, 68);

  double early = 0;
  for (int step = 0; step < 5; ++step) {
    const auto r = dp.train_step(make_shards(data, 3, 4));
    EXPECT_EQ(r.live_nodes, 3);
    early += r.loss;
  }
  early /= 5;

  dp.kill_rank(1);
  EXPECT_FALSE(dp.rank_alive(1));
  EXPECT_EQ(dp.live_ranks(), 2);

  double late = 0;
  for (int step = 0; step < 35; ++step) {
    const auto r = dp.train_step(make_shards(data, 3, 4));
    EXPECT_EQ(r.live_nodes, 2);
    if (step >= 30) late += r.loss;
  }
  late /= 5;

  EXPECT_LT(late, early);
  EXPECT_LE(dp.max_replica_divergence(), 1e-12);  // survivors in lockstep
}

TEST(DataParallelResilience, RevivedRankRejoinsInLockstepWithMomentum) {
  DataParallelTrainer dp(3, [] { return make_net(2); }, 0.2, 0.9);
  dnn::SyntheticBars data(4, 3, 0.05, 69);
  for (int step = 0; step < 3; ++step) {
    dp.train_step(make_shards(data, 3, 2));
  }
  dp.kill_rank(2);
  for (int step = 0; step < 3; ++step) {
    dp.train_step(make_shards(data, 3, 2));
  }
  dp.revive_rank(2);
  EXPECT_TRUE(dp.rank_alive(2));
  EXPECT_EQ(dp.live_ranks(), 3);
  // Momentum state was copied with the parameters, so the revived rank
  // stays bit-identical through further updates.
  for (int step = 0; step < 3; ++step) {
    dp.train_step(make_shards(data, 3, 2));
  }
  EXPECT_LE(dp.max_replica_divergence(), 1e-12);
}

TEST(DataParallelResilience, AllRanksDeadIsAnError) {
  DataParallelTrainer dp(2, [] { return make_net(2); }, 0.1);
  dnn::SyntheticBars data(4, 3, 0.05, 70);
  dp.kill_rank(0);
  dp.kill_rank(1);
  EXPECT_THROW(dp.train_step(make_shards(data, 2, 2)), std::runtime_error);
}

TEST(DataParallelResilience, ReviveWithNoSurvivorsThrows) {
  DataParallelTrainer dp(2, [] { return make_net(2); }, 0.1);
  dp.kill_rank(0);
  dp.kill_rank(1);
  EXPECT_THROW(dp.revive_rank(0), std::runtime_error);
}

std::vector<std::vector<double>> snapshot(dnn::Network& net) {
  std::vector<std::vector<double>> out;
  for (const auto& pg : net.params()) {
    const auto d = pg.param->data();
    out.emplace_back(d.begin(), d.end());
  }
  return out;
}

void expect_equal(const std::vector<std::vector<double>>& a,
                  dnn::Network& net) {
  const auto params = net.params();
  ASSERT_EQ(a.size(), params.size());
  for (std::size_t p = 0; p < a.size(); ++p) {
    const auto d = params[p].param->data();
    ASSERT_EQ(a[p].size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      ASSERT_EQ(a[p][i], d[i]) << "param " << p << " elem " << i;
    }
  }
}

TEST(TrainerResilience, RollbackRestoresTheLastCheckpoint) {
  auto net = make_net(4);
  dnn::Sgd opt(0.1);
  dnn::Trainer trainer(*net, opt);
  EXPECT_FALSE(trainer.rollback());  // checkpointing off

  const std::string path = ::testing::TempDir() + "/swdnn_ckpt.bin";
  trainer.enable_checkpointing(path, 1);
  EXPECT_FALSE(trainer.rollback());  // nothing saved yet

  dnn::SyntheticBars data(4, 3, 0.05, 71);
  const auto before = snapshot(*net);
  const auto step = trainer.train_step_resilient(data.sample(4));
  EXPECT_FALSE(step.rolled_back);
  EXPECT_EQ(trainer.checkpoints_written(), 1);

  // The step updated the parameters; rollback returns to the
  // checkpoint taken before the update.
  ASSERT_TRUE(trainer.rollback());
  expect_equal(before, *net);
  std::remove(path.c_str());
}

TEST(TrainerResilience, NonFiniteGradientsRollBackInsteadOfPoisoning) {
  auto net = make_net(4);
  dnn::Sgd opt(0.1);
  dnn::Trainer trainer(*net, opt);
  const std::string path = ::testing::TempDir() + "/swdnn_ckpt_nan.bin";
  trainer.enable_checkpointing(path, 1);

  dnn::SyntheticBars data(4, 3, 0.05, 72);
  trainer.train_step_resilient(data.sample(4));
  const auto good = snapshot(*net);

  // A batch corrupted by an unhealed fault (NaN pixels, the LDM
  // bit-flip failure mode) must not reach the parameters.
  dnn::Batch poison = data.sample(4);
  poison.images.data()[0] = std::numeric_limits<double>::quiet_NaN();
  const auto step = trainer.train_step_resilient(poison);
  EXPECT_TRUE(step.rolled_back);
  expect_equal(good, *net);

  // Training continues normally afterwards.
  const auto next = trainer.train_step_resilient(data.sample(4));
  EXPECT_FALSE(next.rolled_back);
  std::remove(path.c_str());
}

TEST(TrainerResilience, CheckpointIntervalThrottlesWrites) {
  auto net = make_net(2);
  dnn::Sgd opt(0.1);
  dnn::Trainer trainer(*net, opt);
  const std::string path = ::testing::TempDir() + "/swdnn_ckpt_int.bin";
  trainer.enable_checkpointing(path, 3);
  dnn::SyntheticBars data(4, 3, 0.05, 73);
  for (int step = 0; step < 7; ++step) {
    trainer.train_step_resilient(data.sample(2));
  }
  EXPECT_EQ(trainer.checkpoints_written(), 3);  // steps 0, 3, 6
  std::remove(path.c_str());
}

TEST(TrainerResilience, TrainingConvergesFromTheLastCheckpointAfterAFault) {
  // End-to-end: train, take a fault (rolled back), keep training; the
  // model still learns the synthetic task.
  auto net = make_net(8);
  dnn::Sgd opt(0.3);
  dnn::Trainer trainer(*net, opt);
  const std::string path = ::testing::TempDir() + "/swdnn_ckpt_conv.bin";
  trainer.enable_checkpointing(path, 1);
  dnn::SyntheticBars data(4, 3, 0.05, 74);

  double early = 0;
  for (int step = 0; step < 5; ++step) {
    early += trainer.train_step_resilient(data.sample(8)).loss.loss;
  }
  early /= 5;

  dnn::Batch poison = data.sample(8);
  poison.images.data()[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(trainer.train_step_resilient(poison).rolled_back);

  double late = 0;
  for (int step = 0; step < 40; ++step) {
    const double loss = trainer.train_step_resilient(data.sample(8)).loss.loss;
    if (step >= 35) late += loss;
  }
  late /= 5;
  EXPECT_LT(late, early);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace swdnn::parallel
