// The reference kernels themselves: hand-computed cases, algebraic
// properties, and finite-difference checks on the gradients.

#include <gtest/gtest.h>

#include "src/conv/reference.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

TEST(Reference, IdentityFilterCopiesInput) {
  // 1x1 filter of value 1 with one channel is the identity.
  const ConvShape s = ConvShape::from_output(2, 1, 1, 3, 3, 1, 1);
  tensor::Tensor in = make_input(s), w = make_filter(s), out = make_output(s);
  util::Rng rng(1);
  rng.fill_uniform(in.data(), -1, 1);
  w.fill(1.0);
  reference_forward(in, w, out, s);
  EXPECT_TRUE(out.allclose(in, 0, 0));
}

TEST(Reference, HandComputed2x2) {
  // 3x3 input, 2x2 filter of ones: each output is the window sum.
  const ConvShape s = ConvShape::from_output(1, 1, 1, 2, 2, 2, 2);
  tensor::Tensor in = make_input(s), w = make_filter(s), out = make_output(s);
  for (std::int64_t r = 0; r < 3; ++r)
    for (std::int64_t c = 0; c < 3; ++c)
      in.at(r, c, 0, 0) = static_cast<double>(r * 3 + c);
  w.fill(1.0);
  reference_forward(in, w, out, s);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0, 0), 0 + 1 + 3 + 4);
  EXPECT_DOUBLE_EQ(out.at(0, 1, 0, 0), 1 + 2 + 4 + 5);
  EXPECT_DOUBLE_EQ(out.at(1, 0, 0, 0), 3 + 4 + 6 + 7);
  EXPECT_DOUBLE_EQ(out.at(1, 1, 0, 0), 4 + 5 + 7 + 8);
}

TEST(Reference, DeltaFilterShiftsImage) {
  // A filter that is 1 at (kr=1, kc=2) picks in[ro+1][co+2].
  const ConvShape s = ConvShape::from_output(1, 1, 1, 3, 3, 2, 3);
  tensor::Tensor in = make_input(s), w = make_filter(s), out = make_output(s);
  util::Rng rng(2);
  rng.fill_uniform(in.data(), -1, 1);
  w.at(1, 2, 0, 0) = 1.0;
  reference_forward(in, w, out, s);
  for (std::int64_t r = 0; r < 3; ++r)
    for (std::int64_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(out.at(r, c, 0, 0), in.at(r + 1, c + 2, 0, 0));
}

TEST(Reference, LinearInInput) {
  const ConvShape s = ConvShape::from_output(2, 3, 2, 4, 4, 3, 3);
  tensor::Tensor a = make_input(s), b = make_input(s), w = make_filter(s);
  util::Rng rng(3);
  rng.fill_uniform(a.data(), -1, 1);
  rng.fill_uniform(b.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);

  tensor::Tensor sum = make_input(s);
  for (std::int64_t i = 0; i < sum.size(); ++i) {
    sum.data()[i] = 2.0 * a.data()[i] + 3.0 * b.data()[i];
  }
  tensor::Tensor out_a = make_output(s), out_b = make_output(s),
                 out_sum = make_output(s);
  reference_forward(a, w, out_a, s);
  reference_forward(b, w, out_b, s);
  reference_forward(sum, w, out_sum, s);
  for (std::int64_t i = 0; i < out_sum.size(); ++i) {
    EXPECT_NEAR(out_sum.data()[i],
                2.0 * out_a.data()[i] + 3.0 * out_b.data()[i], 1e-12);
  }
}

TEST(Reference, ChannelsSumIntoOutput) {
  // Two input channels with unit 1x1 filters: output = channel sum.
  const ConvShape s = ConvShape::from_output(1, 2, 1, 2, 2, 1, 1);
  tensor::Tensor in = make_input(s), w = make_filter(s), out = make_output(s);
  in.at(0, 0, 0, 0) = 1.0;
  in.at(0, 0, 1, 0) = 10.0;
  w.fill(1.0);
  reference_forward(in, w, out, s);
  EXPECT_DOUBLE_EQ(out.at(0, 0, 0, 0), 11.0);
}

// Finite-difference gradient checks: perturb one element, verify the
// analytic gradient against (L(x+h) - L(x-h)) / 2h for the scalar loss
// L = sum(out * G) with a fixed random G.
double loss_with(const tensor::Tensor& in, const tensor::Tensor& w,
                 const tensor::Tensor& g, const ConvShape& s) {
  tensor::Tensor out = make_output(s);
  reference_forward(in, w, out, s);
  double loss = 0;
  for (std::int64_t i = 0; i < out.size(); ++i) {
    loss += out.data()[i] * g.data()[i];
  }
  return loss;
}

TEST(Reference, BackwardDataMatchesFiniteDifferences) {
  const ConvShape s = ConvShape::from_output(2, 2, 3, 3, 3, 2, 2);
  util::Rng rng(4);
  tensor::Tensor in = make_input(s), w = make_filter(s), g = make_output(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(g.data(), -1, 1);

  tensor::Tensor din = make_input(s);
  reference_backward_data(g, w, din, s);

  const double h = 1e-6;
  for (std::int64_t idx : {0L, 7L, 23L, static_cast<long>(in.size() - 1)}) {
    tensor::Tensor plus = in, minus = in;
    plus.data()[idx] += h;
    minus.data()[idx] -= h;
    const double numeric =
        (loss_with(plus, w, g, s) - loss_with(minus, w, g, s)) / (2 * h);
    EXPECT_NEAR(din.data()[idx], numeric, 1e-6) << "idx=" << idx;
  }
}

TEST(Reference, BackwardFilterMatchesFiniteDifferences) {
  const ConvShape s = ConvShape::from_output(2, 2, 3, 3, 3, 2, 2);
  util::Rng rng(5);
  tensor::Tensor in = make_input(s), w = make_filter(s), g = make_output(s);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  rng.fill_uniform(g.data(), -1, 1);

  tensor::Tensor dw = make_filter(s);
  reference_backward_filter(in, g, dw, s);

  const double h = 1e-6;
  for (std::int64_t idx : {0L, 5L, static_cast<long>(w.size() - 1)}) {
    tensor::Tensor plus = w, minus = w;
    plus.data()[idx] += h;
    minus.data()[idx] -= h;
    const double numeric =
        (loss_with(in, plus, g, s) - loss_with(in, minus, g, s)) / (2 * h);
    EXPECT_NEAR(dw.data()[idx], numeric, 1e-6) << "idx=" << idx;
  }
}

}  // namespace
}  // namespace swdnn::conv
