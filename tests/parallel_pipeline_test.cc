// Pipeline parallelism: micro-batch splitting, the 1F1B schedule, and
// the bitwise differential against single-replica sequential
// micro-batch accumulation — across stage counts, multiple steps, and
// parameter updates (momentum state included).

#include <gtest/gtest.h>

#include <algorithm>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/parallel/pipeline.h"
#include "src/util/rng.h"

namespace swdnn::parallel {
namespace {

TEST(MicroBatchSplit, PreservesEverySampleInOrder) {
  dnn::SyntheticBars data(4, 3, 0.05, 11);
  const dnn::Batch batch = data.sample(10);
  const auto mbs = split_micro_batches(batch, 4);  // 3+3+2+2
  ASSERT_EQ(mbs.size(), 4u);
  EXPECT_EQ(mbs[0].labels.size(), 3u);
  EXPECT_EQ(mbs[3].labels.size(), 2u);
  std::int64_t cursor = 0;
  for (const auto& mb : mbs) {
    const auto len = static_cast<std::int64_t>(mb.labels.size());
    EXPECT_EQ(mb.images.dims().back(), len);
    for (std::int64_t b = 0; b < len; ++b) {
      EXPECT_EQ(mb.labels[static_cast<std::size_t>(b)],
                batch.labels[static_cast<std::size_t>(cursor + b)]);
      for (std::int64_t r = 0; r < 4; ++r) {
        for (std::int64_t c = 0; c < 4; ++c) {
          ASSERT_EQ(mb.images.at(r, c, 0, b),
                    batch.images.at(r, c, 0, cursor + b));
        }
      }
    }
    cursor += len;
  }
  EXPECT_THROW(split_micro_batches(batch, 0), std::invalid_argument);
  EXPECT_THROW(split_micro_batches(batch, 11), std::invalid_argument);
}

TEST(Schedule1F1B, ClassicShapeAndDependencies) {
  const int S = 2, M = 4;
  const auto ticks = build_1f1b_schedule(S, M);
  // The canonical pipeline length: M + S - 1 tick-pairs.
  EXPECT_EQ(ticks.size(), static_cast<std::size_t>(2 * (M + S - 1)));

  std::vector<std::vector<int>> tick_f(S, std::vector<int>(M, -1));
  std::vector<std::vector<int>> tick_b(S, std::vector<int>(M, -1));
  for (std::size_t t = 0; t < ticks.size(); ++t) {
    for (const PipeStep& step : ticks[t]) {
      auto& table = step.action == PipeAction::kForward ? tick_f : tick_b;
      ASSERT_EQ(table[step.stage][step.micro_batch], -1) << "double-issue";
      table[step.stage][step.micro_batch] = static_cast<int>(t);
    }
  }
  for (int s = 0; s < S; ++s) {
    for (int m = 0; m < M; ++m) {
      ASSERT_GE(tick_f[s][m], 0);
      ASSERT_GE(tick_b[s][m], 0);
      // F(s,m) strictly after F(s-1,m); B(s,m) strictly after B(s+1,m)
      // and after F(s,m).
      if (s > 0) {
        EXPECT_GT(tick_f[s][m], tick_f[s - 1][m]);
      }
      if (s < S - 1) {
        EXPECT_GT(tick_b[s][m], tick_b[s + 1][m]);
      }
      EXPECT_GT(tick_b[s][m], tick_f[s][m]);
      // 1F1B residency bound: at most min(S - s, M) micro-batches in
      // flight per stage.
      if (m >= std::min(S - s, M)) {
        EXPECT_GT(tick_f[s][m], tick_b[s][m - std::min(S - s, M)]);
      }
    }
  }
  // The last stage never waits between forward and backward, so its
  // backward always reuses the live activations (no recompute).
  for (int m = 0; m < M; ++m) {
    EXPECT_EQ(tick_b[S - 1][m], tick_f[S - 1][m] + 1);
  }
  EXPECT_THROW(build_1f1b_schedule(0, 4), std::invalid_argument);
}

std::unique_ptr<dnn::Network> make_net(std::int64_t batch) {
  util::Rng rng(808);  // fixed seed: pipeline and reference identical
  auto net = std::make_unique<dnn::Network>();
  // 4 layers so up to 4 stages: conv -> relu -> pool -> fc.
  // 6x6x1 input -> conv 3x3 (2 filters) -> 4x4x2 -> pool 2 -> 2x2x2.
  net->emplace<dnn::Convolution>(
      conv::ConvShape::from_output(batch, 1, 2, 4, 4, 3, 3), rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::MaxPooling>(2);
  net->emplace<dnn::FullyConnected>(2 * 2 * 2, 3, rng);
  return net;
}

TEST(Pipeline, BitwiseMatchesReferenceAcrossStageCounts) {
  // The tentpole differential: 1F1B execution with staging, recompute,
  // and per-stage ascending-micro-batch accumulation must equal
  // sequential micro-batch accumulation on the whole network — to the
  // bit, over multiple steps, including the momentum updates.
  dnn::SyntheticBars data(6, 3, 0.05, 21);
  for (const int stages : {1, 2, 3, 4}) {
    PipelineParallelTrainer pp(stages, /*micro_batches=*/4,
                               [] { return make_net(2); }, 0.1, 0.9);
    auto ref = make_net(2);  // eager reference, micro-batch shaped
    dnn::Sgd ref_opt(0.1, 0.9);
    for (int step = 0; step < 4; ++step) {
      const dnn::Batch batch = data.sample(8);
      const auto got = pp.train_step(batch);
      const auto want =
          PipelineParallelTrainer::reference_step(*ref, ref_opt, batch, 4);
      EXPECT_EQ(got.loss, want.loss) << stages << " stages, step " << step;
      EXPECT_EQ(got.correct, want.correct);
      EXPECT_EQ(pp.max_param_divergence(*ref), 0.0)
          << stages << " stages, step " << step;
    }
  }
}

TEST(Pipeline, CompiledStagesMatchEagerReference) {
  // Stages compiled against one shared context (arena execution, plan
  // cache) vs the eager unpartitioned network: still bitwise.
  dnn::SyntheticBars data(6, 3, 0.05, 22);
  PipelineParallelTrainer pp(3, 4, [] { return make_net(2); }, 0.05, 0.9);
  pp.compile({6, 6, 1, 2});
  ASSERT_NE(pp.shared_context(), nullptr);
  ASSERT_TRUE(pp.stage(0).compiled());
  auto ref = make_net(2);
  dnn::Sgd ref_opt(0.05, 0.9);
  for (int step = 0; step < 3; ++step) {
    const dnn::Batch batch = data.sample(8);
    pp.train_step(batch);
    PipelineParallelTrainer::reference_step(*ref, ref_opt, batch, 4);
    EXPECT_EQ(pp.max_param_divergence(*ref), 0.0) << "step " << step;
  }
}

TEST(Pipeline, RecomputeAndStagingBehaveAsDesigned) {
  dnn::SyntheticBars data(6, 3, 0.05, 23);
  PipelineParallelTrainer pp(4, 4, [] { return make_net(2); }, 0.1);
  const auto result = pp.train_step(data.sample(8));
  EXPECT_EQ(result.ticks, static_cast<int>(pp.schedule().size()));
  // Non-final stages must recompute (their activations moved on);
  // the final stage never does.
  EXPECT_GT(result.recomputed_forwards, 0);
  EXPECT_LE(result.recomputed_forwards, 3 * 4);
  // The staging arena packs: boundary slots with disjoint liveness
  // share bytes.
  EXPECT_GT(pp.staging_peak_bytes(), 0);
  EXPECT_LT(pp.staging_peak_bytes(), pp.staging_naive_bytes());

  // Single stage degenerates to plain micro-batch accumulation: no
  // boundaries, no recompute.
  PipelineParallelTrainer solo(1, 4, [] { return make_net(2); }, 0.1);
  const auto solo_result = solo.train_step(data.sample(8));
  EXPECT_EQ(solo_result.recomputed_forwards, 0);
  EXPECT_EQ(solo.staging_peak_bytes(), 0);
}

TEST(Pipeline, StagePartitionCoversAllLayers) {
  PipelineParallelTrainer pp(3, 2, [] { return make_net(2); }, 0.1);
  ASSERT_EQ(pp.stages(), 3);
  std::size_t next = 0;
  for (int s = 0; s < 3; ++s) {
    const auto [first, last] = pp.stage_layers(s);
    EXPECT_EQ(first, next);
    EXPECT_GE(last, first);
    next = last + 1;
  }
  EXPECT_EQ(next, 4u);  // all 4 layers owned exactly once
}

TEST(Pipeline, RejectsBadConfigurations) {
  EXPECT_THROW(
      PipelineParallelTrainer(5, 2, [] { return make_net(2); }, 0.1),
      std::invalid_argument);
  EXPECT_THROW(
      PipelineParallelTrainer(2, 0, [] { return make_net(2); }, 0.1),
      std::invalid_argument);
  PipelineParallelTrainer pp(2, 4, [] { return make_net(2); }, 0.1);
  dnn::SyntheticBars data(6, 3, 0.05, 24);
  // 10 % 4 != 0: micro-batches would be ragged against fixed staging.
  EXPECT_THROW(pp.train_step(data.sample(10)), std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::parallel
