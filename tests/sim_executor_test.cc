// SPMD launches on the simulated mesh: identity, DMA, register
// communication, barriers, and statistics aggregation.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "src/sim/executor.h"

namespace swdnn::sim {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

TEST(Executor, LaunchesOneKernelPerCpe) {
  const arch::Sw26010Spec spec = mesh_spec(4);
  MeshExecutor exec(spec);
  std::vector<std::atomic<int>> hits(16);
  exec.run([&](CpeContext& ctx) {
    hits[static_cast<std::size_t>(ctx.id())].fetch_add(1);
    EXPECT_EQ(ctx.id(), ctx.row() * 4 + ctx.col());
    EXPECT_EQ(ctx.mesh_rows(), 4);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Executor, FullMeshHas64Cpes) {
  MeshExecutor exec;
  std::atomic<int> count{0};
  exec.run([&](CpeContext& ctx) {
    (void)ctx;
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(Executor, DmaRoundTripThroughLdm) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  MeshExecutor exec(spec);
  std::vector<double> global(4 * 16);
  for (std::size_t i = 0; i < global.size(); ++i) {
    global[i] = static_cast<double>(i);
  }
  std::vector<double> result(global.size());
  const LaunchStats stats = exec.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm().alloc_doubles(16);
    const std::size_t off = static_cast<std::size_t>(ctx.id()) * 16;
    ctx.dma_get({global.data() + off, 16}, buf);
    for (double& v : buf) v += 1.0;
    ctx.charge_flops(16);
    ctx.dma_put(buf, {result.data() + off, 16});
  });
  for (std::size_t i = 0; i < global.size(); ++i) {
    EXPECT_EQ(result[i], global[i] + 1.0);
  }
  EXPECT_EQ(stats.dma.get_bytes, global.size() * 8);
  EXPECT_EQ(stats.dma.put_bytes, global.size() * 8);
  EXPECT_EQ(stats.total_flops, 4u * 16u);
  EXPECT_GT(stats.max_compute_cycles, 0u);
  EXPECT_GT(stats.dma_seconds, 0.0);
}

TEST(Executor, StridedGatherAndScatter) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  MeshExecutor exec(spec);
  // 4 rows of 8; each CPE gathers column-block ctx.id()*2 of width 2.
  std::vector<double> matrix(4 * 8);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    matrix[i] = static_cast<double>(i);
  }
  std::vector<double> out(matrix.size());
  exec.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm().alloc_doubles(8);  // 4 rows x 2 cols
    const std::int64_t col0 = ctx.id() * 2;
    ctx.dma_get_strided(matrix.data() + col0, 4, 2, 8, buf);
    ctx.dma_put_strided(buf, out.data() + col0, 4, 2, 8);
  });
  EXPECT_EQ(out, matrix);
}

TEST(Executor, BarrierSeparatesPhases) {
  const arch::Sw26010Spec spec = mesh_spec(4);
  MeshExecutor exec(spec);
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  exec.run([&](CpeContext& ctx) {
    phase1.fetch_add(1);
    ctx.sync();
    if (phase1.load() != 16) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Executor, RowPutGetDeliversInOrder) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  MeshExecutor exec(spec);
  std::vector<double> received(4, -1);
  exec.run([&](CpeContext& ctx) {
    if (ctx.col() == 0) {
      ctx.put_row(1, Vec4::splat(static_cast<double>(ctx.row() + 10)));
    } else {
      received[static_cast<std::size_t>(ctx.row())] = ctx.get_row().lane[0];
    }
  });
  EXPECT_EQ(received[0], 10.0);
  EXPECT_EQ(received[1], 11.0);
}

TEST(Executor, ColPutGetDelivers) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  MeshExecutor exec(spec);
  std::vector<double> received(2, -1);
  exec.run([&](CpeContext& ctx) {
    if (ctx.row() == 0) {
      ctx.put_col(1, Vec4::splat(static_cast<double>(ctx.col() + 20)));
    } else {
      received[static_cast<std::size_t>(ctx.col())] = ctx.get_col().lane[0];
    }
  });
  EXPECT_EQ(received[0], 20.0);
  EXPECT_EQ(received[1], 21.0);
}

TEST(Executor, RowBroadcastReachesWholeRow) {
  const arch::Sw26010Spec spec = mesh_spec(4);
  MeshExecutor exec(spec);
  std::vector<double> received(16, -1);
  const LaunchStats stats = exec.run([&](CpeContext& ctx) {
    if (ctx.col() == 2) {
      ctx.bcast_row(Vec4::splat(static_cast<double>(100 + ctx.row())));
      received[static_cast<std::size_t>(ctx.id())] =
          static_cast<double>(100 + ctx.row());
    } else {
      received[static_cast<std::size_t>(ctx.id())] = ctx.get_row().lane[0];
    }
  });
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(received[static_cast<std::size_t>(r * 4 + c)], 100.0 + r);
    }
  }
  // 4 broadcasts x 3 receivers each.
  EXPECT_EQ(stats.regcomm_messages, 12u);
  EXPECT_EQ(stats.regcomm_bytes(), 12u * 32u);
}

TEST(Executor, ColBroadcastReachesWholeColumn) {
  const arch::Sw26010Spec spec = mesh_spec(4);
  MeshExecutor exec(spec);
  std::vector<double> received(16, -1);
  exec.run([&](CpeContext& ctx) {
    if (ctx.row() == 0) {
      ctx.bcast_col(Vec4::splat(static_cast<double>(ctx.col())));
      received[static_cast<std::size_t>(ctx.id())] =
          static_cast<double>(ctx.col());
    } else {
      received[static_cast<std::size_t>(ctx.id())] = ctx.get_col().lane[0];
    }
  });
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 4; ++c) {
      EXPECT_EQ(received[static_cast<std::size_t>(r * 4 + c)],
                static_cast<double>(c));
    }
  }
}

TEST(Executor, LdmIsPerCpe) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  MeshExecutor exec(spec);
  std::atomic<bool> overlap{false};
  std::vector<double*> bases(4, nullptr);
  exec.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm().alloc_doubles(64);
    bases[static_cast<std::size_t>(ctx.id())] = buf.data();
    ctx.sync();
    for (int other = 0; other < 4; ++other) {
      if (other != ctx.id() && bases[static_cast<std::size_t>(other)] ==
                                   buf.data()) {
        overlap.store(true);
      }
    }
  });
  EXPECT_FALSE(overlap.load());
}

TEST(LaunchStats, OverlapModel) {
  LaunchStats s;
  s.compute_seconds = 2.0;
  s.dma_seconds = 3.0;
  s.total_flops = 12'000'000'000ull;
  EXPECT_DOUBLE_EQ(s.modeled_seconds(true), 3.0);
  EXPECT_DOUBLE_EQ(s.modeled_seconds(false), 5.0);
  EXPECT_DOUBLE_EQ(s.modeled_gflops(true), 4.0);
}

TEST(Executor, ChargeFlopsRoundsUpCycles) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  MeshExecutor exec(spec);
  const LaunchStats stats = exec.run([&](CpeContext& ctx) {
    if (ctx.id() == 0) ctx.charge_flops(9);  // 9/8 -> 2 cycles
  });
  EXPECT_EQ(stats.max_compute_cycles, 2u);
}

}  // namespace
}  // namespace swdnn::sim
