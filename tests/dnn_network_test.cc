// Network-level integration: gradient flow through stacks, SGD descent,
// and end-to-end training on the synthetic dataset.

#include <gtest/gtest.h>

#include "src/dnn/convolution.h"
#include "src/dnn/dropout.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/sgd.h"
#include "src/dnn/trainer.h"

namespace swdnn::dnn {
namespace {

TEST(Network, ForwardShapesFlowThroughCnnStack) {
  util::Rng rng(71);
  Network net;
  // 8x8x1 -> conv3x3(4) -> 6x6x4 -> relu -> pool2 -> 3x3x4 wait: 6/2=3
  net.emplace<Convolution>(conv::ConvShape::from_output(2, 1, 4, 6, 6, 3, 3),
                           rng);
  net.emplace<Relu>();
  net.emplace<MaxPooling>(2);
  net.emplace<FullyConnected>(3 * 3 * 4, 5, rng);

  tensor::Tensor x({8, 8, 1, 2});
  rng.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor y = net.forward(x);
  EXPECT_EQ(y.dims(), (std::vector<std::int64_t>{5, 2}));
  EXPECT_EQ(net.num_layers(), 4u);
}

TEST(Network, BackwardReturnsInputShapedGradient) {
  util::Rng rng(72);
  Network net;
  net.emplace<Convolution>(conv::ConvShape::from_output(2, 1, 2, 4, 4, 3, 3),
                           rng);
  net.emplace<Relu>();
  net.emplace<FullyConnected>(4 * 4 * 2, 3, rng);
  tensor::Tensor x({6, 6, 1, 2});
  rng.fill_uniform(x.data(), -1, 1);
  net.forward(x);
  tensor::Tensor g({3, 2});
  g.fill(0.1);
  const tensor::Tensor dx = net.backward(g);
  EXPECT_EQ(dx.dims(), x.dims());
}

TEST(Network, ParamsAggregateAcrossLayers) {
  util::Rng rng(73);
  Network net;
  net.emplace<Convolution>(conv::ConvShape::from_output(1, 1, 2, 2, 2, 2, 2),
                           rng);
  net.emplace<Relu>();
  net.emplace<FullyConnected>(2 * 2 * 2, 3, rng);
  // conv filter + fc weights + fc bias.
  EXPECT_EQ(net.params().size(), 3u);
}

TEST(Network, SetTrainingPropagatesToDropout) {
  util::Rng rng(75);
  Network net;
  net.emplace<Relu>();
  auto& dropout = net.emplace<Dropout>(0.9, 7);
  tensor::Tensor x({256});
  x.fill(1.0);

  net.set_training(false);
  EXPECT_FALSE(dropout.training());
  const tensor::Tensor eval_out = net.forward(x);
  for (double v : eval_out.data()) EXPECT_EQ(v, 1.0);  // identity in eval

  net.set_training(true);
  EXPECT_TRUE(dropout.training());
  const tensor::Tensor train_out = net.forward(x);
  int zeros = 0;
  for (double v : train_out.data()) zeros += (v == 0.0);
  EXPECT_GT(zeros, 128);  // p = 0.9 drops most elements
}

TEST(Sgd, PlainStepMovesAgainstGradient) {
  tensor::Tensor p({2}), g({2});
  p.fill(1.0);
  g.at(0) = 0.5;
  g.at(1) = -0.5;
  Sgd opt(0.1);
  opt.step({ParamGrad{&p, &g}});
  EXPECT_NEAR(p.at(0), 0.95, 1e-12);
  EXPECT_NEAR(p.at(1), 1.05, 1e-12);
}

TEST(Sgd, MomentumAccumulates) {
  tensor::Tensor p({1}), g({1});
  g.at(0) = 1.0;
  Sgd opt(0.1, 0.9);
  opt.step({ParamGrad{&p, &g}});
  EXPECT_NEAR(p.at(0), -0.1, 1e-12);  // v = -0.1
  opt.step({ParamGrad{&p, &g}});
  EXPECT_NEAR(p.at(0), -0.29, 1e-12);  // v = -0.19
}

TEST(Sgd, ConvergesOnLinearLeastSquares) {
  // Fit y = 2x with an FC layer: loss must fall monotonically-ish and
  // reach near zero.
  util::Rng rng(74);
  FullyConnected fc(1, 1, rng);
  Sgd opt(0.1);
  tensor::Tensor x({1, 8}), y({1, 8});
  for (std::int64_t b = 0; b < 8; ++b) {
    x.at(0, b) = static_cast<double>(b) / 8.0;
    y.at(0, b) = 2.0 * x.at(0, b);
  }
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 200; ++step) {
    const tensor::Tensor pred = fc.forward(x);
    const LossResult loss = mean_squared_error(pred, y);
    if (step == 0) first_loss = loss.loss;
    last_loss = loss.loss;
    fc.backward(loss.d_logits);
    opt.step(fc.params());
  }
  EXPECT_LT(last_loss, first_loss * 0.01);
  EXPECT_NEAR(fc.weights().at(0, 0), 2.0, 0.1);
}

TEST(SyntheticBars, LabelsInRangeAndImagesShaped) {
  SyntheticBars data(8, 4, 0.05, 81);
  const Batch batch = data.sample(16);
  EXPECT_EQ(batch.images.dims(), (std::vector<std::int64_t>{8, 8, 1, 16}));
  EXPECT_EQ(batch.labels.size(), 16u);
  for (int label : batch.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, 4);
  }
}

TEST(SyntheticBars, ClassesAreVisuallyDistinct) {
  // Mean images of two different classes must differ substantially.
  SyntheticBars data(8, 2, 0.0, 82);
  tensor::Tensor mean0({8, 8}), mean1({8, 8});
  int n0 = 0, n1 = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Batch b = data.sample(4);
    for (std::int64_t i = 0; i < 4; ++i) {
      auto& mean = b.labels[static_cast<std::size_t>(i)] == 0 ? mean0 : mean1;
      (b.labels[static_cast<std::size_t>(i)] == 0 ? n0 : n1) += 1;
      for (std::int64_t r = 0; r < 8; ++r)
        for (std::int64_t c = 0; c < 8; ++c)
          mean.at(r, c) += b.images.at(r, c, 0, i);
    }
  }
  ASSERT_GT(n0, 0);
  ASSERT_GT(n1, 0);
  double diff = 0;
  for (std::int64_t i = 0; i < mean0.size(); ++i) {
    diff += std::abs(mean0.data()[i] / n0 - mean1.data()[i] / n1);
  }
  EXPECT_GT(diff, 1.0);
}

TEST(Trainer, CnnLearnsSyntheticBars) {
  // End-to-end: a tiny CNN must beat chance solidly within a few dozen
  // steps on the 4-class bars task.
  util::Rng rng(83);
  Network net;
  net.emplace<Convolution>(
      conv::ConvShape::from_output(8, 1, 4, 6, 6, 3, 3), rng);
  net.emplace<Relu>();
  net.emplace<MaxPooling>(2);
  net.emplace<FullyConnected>(3 * 3 * 4, 4, rng);
  Sgd opt(0.2, 0.9);
  Trainer trainer(net, opt);
  SyntheticBars data(8, 4, 0.05, 84);

  trainer.train_epoch(data, 8, 60);
  const double accuracy = trainer.evaluate(data, 8, 10);
  EXPECT_GT(accuracy, 0.7) << "chance level is 0.25";
}

TEST(Trainer, LossDecreasesOverTraining) {
  util::Rng rng(85);
  Network net;
  net.emplace<Convolution>(
      conv::ConvShape::from_output(8, 1, 2, 6, 6, 3, 3), rng);
  net.emplace<Relu>();
  net.emplace<FullyConnected>(6 * 6 * 2, 2, rng);
  Sgd opt(0.1, 0.9);
  Trainer trainer(net, opt);
  SyntheticBars data(8, 2, 0.05, 86);
  const EpochStats early = trainer.train_epoch(data, 8, 15);
  const EpochStats late = trainer.train_epoch(data, 8, 15);
  EXPECT_LT(late.mean_loss, early.mean_loss);
  EXPECT_GE(late.seconds, 0.0);
}

}  // namespace
}  // namespace swdnn::dnn
