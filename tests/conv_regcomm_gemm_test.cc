// The Fig. 3 mesh GEMM: distributed tiles, bus-only operand exchange.

#include <gtest/gtest.h>

#include <vector>

#include "src/conv/gemm.h"
#include "src/conv/regcomm_gemm.h"
#include "src/util/rng.h"

namespace swdnn::conv {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

TEST(BusHelpers, BroadcastAndReceiveArbitraryLengths) {
  const arch::Sw26010Spec spec = mesh_spec(2);
  sim::MeshExecutor exec(spec);
  for (std::size_t len : {1u, 3u, 4u, 5u, 11u}) {
    std::vector<double> received(4 * len, -1);
    exec.run([&, len](sim::CpeContext& ctx) {
      std::vector<double> payload(len);
      if (ctx.col() == 0) {
        for (std::size_t i = 0; i < len; ++i) {
          payload[i] = static_cast<double>(ctx.row() * 100 + i);
        }
        bus_broadcast_row(ctx, payload);
      } else {
        bus_recv_row(ctx, payload);
        std::copy(payload.begin(), payload.end(),
                  received.begin() +
                      static_cast<std::ptrdiff_t>(ctx.id() * len));
      }
    });
    for (int r = 0; r < 2; ++r) {
      for (std::size_t i = 0; i < len; ++i) {
        EXPECT_EQ(received[static_cast<std::size_t>(r * 2 + 1) * len + i],
                  static_cast<double>(r * 100 + static_cast<int>(i)))
            << "len=" << len;
      }
    }
  }
}

// Full distributed GEMM: scatter W[k][m-major] and Di, run the mesh
// contraction, gather Do, compare against a host GEMM.
void run_mesh_gemm_case(int mesh_dim, int m_tile, int k_tile, int n_tile,
                        std::uint64_t seed) {
  const int p = mesh_dim;
  const int m = m_tile * p, k = k_tile * p, n = n_tile * p;
  util::Rng rng(seed);
  // Global operands. W stored [k][m] (channel-major), Di [k][n].
  std::vector<double> w(static_cast<std::size_t>(k * m));
  std::vector<double> di(static_cast<std::size_t>(k * n));
  rng.fill_uniform(w, -1, 1);
  rng.fill_uniform(di, -1, 1);

  // Expected: Do[mm][nn] = sum_kk W[kk][mm] * Di[kk][nn].
  std::vector<double> expected(static_cast<std::size_t>(m * n), 0.0);
  for (int kk = 0; kk < k; ++kk)
    for (int mm = 0; mm < m; ++mm)
      for (int nn = 0; nn < n; ++nn)
        expected[static_cast<std::size_t>(mm * n + nn)] +=
            w[static_cast<std::size_t>(kk * m + mm)] *
            di[static_cast<std::size_t>(kk * n + nn)];

  std::vector<double> actual(static_cast<std::size_t>(m * n), 0.0);
  sim::MeshExecutor exec(mesh_spec(p));
  const sim::LaunchStats stats = exec.run([&](sim::CpeContext& ctx) {
    const int i = ctx.row(), j = ctx.col();
    auto w_local = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(k_tile * m_tile));
    auto w_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(k_tile * m_tile));
    auto di_local = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(k_tile * n_tile));
    auto di_recv = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(k_tile * n_tile));
    auto do_local = ctx.ldm().alloc_doubles(
        static_cast<std::size_t>(m_tile * n_tile));
    // CPE(i,j) owns W(i,j): no-block i (m), ni-block j (k) — stored
    // [k_local][m_local]; Di(i,j): ni-block i, n-block j.
    for (int kl = 0; kl < k_tile; ++kl)
      for (int ml = 0; ml < m_tile; ++ml)
        w_local[static_cast<std::size_t>(kl * m_tile + ml)] =
            w[static_cast<std::size_t>((j * k_tile + kl) * m +
                                       (i * m_tile + ml))];
    for (int kl = 0; kl < k_tile; ++kl)
      for (int nl = 0; nl < n_tile; ++nl)
        di_local[static_cast<std::size_t>(kl * n_tile + nl)] =
            di[static_cast<std::size_t>((i * k_tile + kl) * n +
                                        (j * n_tile + nl))];
    std::fill(do_local.begin(), do_local.end(), 0.0);
    mesh_gemm_accumulate(ctx, w_local, di_local, do_local, w_recv, di_recv,
                         m_tile, k_tile, n_tile);
    for (int ml = 0; ml < m_tile; ++ml)
      for (int nl = 0; nl < n_tile; ++nl)
        actual[static_cast<std::size_t>((i * m_tile + ml) * n +
                                        (j * n_tile + nl))] =
            do_local[static_cast<std::size_t>(ml * n_tile + nl)];
  });

  for (std::size_t idx = 0; idx < expected.size(); ++idx) {
    ASSERT_NEAR(expected[idx], actual[idx], 1e-12)
        << "mesh=" << p << " idx=" << idx;
  }
  EXPECT_EQ(stats.total_flops,
            2ull * static_cast<std::uint64_t>(m) * k * n);
  EXPECT_GT(stats.regcomm_messages, 0u);
}

TEST(MeshGemm, Mesh2SquareTiles) { run_mesh_gemm_case(2, 2, 2, 2, 21); }
TEST(MeshGemm, Mesh2RectangularTiles) { run_mesh_gemm_case(2, 3, 2, 5, 22); }
TEST(MeshGemm, Mesh2SingleElementTiles) { run_mesh_gemm_case(2, 1, 1, 1, 23); }
TEST(MeshGemm, Mesh4SquareTiles) { run_mesh_gemm_case(4, 2, 2, 2, 24); }
TEST(MeshGemm, Mesh4WideTiles) { run_mesh_gemm_case(4, 1, 2, 6, 25); }
TEST(MeshGemm, Mesh8SmallTiles) { run_mesh_gemm_case(8, 1, 1, 2, 26); }

TEST(MeshGemm, AccumulatesOnTopOfExistingOutput) {
  // Calling the contraction twice doubles the result.
  const arch::Sw26010Spec spec = mesh_spec(2);
  sim::MeshExecutor exec(spec);
  std::vector<double> once(4, 0), twice(4, 0);
  for (int repeats = 1; repeats <= 2; ++repeats) {
    auto& sink = repeats == 1 ? once : twice;
    exec.run([&, repeats](sim::CpeContext& ctx) {
      auto w = ctx.ldm().alloc_doubles(1);
      auto wr = ctx.ldm().alloc_doubles(1);
      auto d = ctx.ldm().alloc_doubles(1);
      auto dr = ctx.ldm().alloc_doubles(1);
      auto o = ctx.ldm().alloc_doubles(1);
      w[0] = 1.0 + ctx.id();
      d[0] = 2.0;
      o[0] = 0.0;
      for (int rep = 0; rep < repeats; ++rep) {
        mesh_gemm_accumulate(ctx, w, d, o, wr, dr, 1, 1, 1);
      }
      sink[static_cast<std::size_t>(ctx.id())] = o[0];
    });
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(twice[i], 2.0 * once[i]);
  }
}

TEST(LocalGemm, MatchesHostGemmTransposedConvention) {
  // local_gemm_accumulate consumes W as [k][m]; verify against
  // gemm_naive with an explicitly transposed A.
  const int m = 3, k = 4, n = 5;
  util::Rng rng(31);
  std::vector<double> w_km(static_cast<std::size_t>(k * m));
  std::vector<double> di(static_cast<std::size_t>(k * n));
  rng.fill_uniform(w_km, -1, 1);
  rng.fill_uniform(di, -1, 1);
  std::vector<double> a_mk(static_cast<std::size_t>(m * k));
  for (int kk = 0; kk < k; ++kk)
    for (int mm = 0; mm < m; ++mm)
      a_mk[static_cast<std::size_t>(mm * k + kk)] =
          w_km[static_cast<std::size_t>(kk * m + mm)];
  std::vector<double> expected(static_cast<std::size_t>(m * n), 0.0);
  gemm_naive(m, n, k, a_mk, di, expected);

  std::vector<double> actual(static_cast<std::size_t>(m * n), 0.0);
  sim::MeshExecutor exec(mesh_spec(2));
  exec.run([&](sim::CpeContext& ctx) {
    if (ctx.id() != 0) return;
    std::vector<double> out(static_cast<std::size_t>(m * n), 0.0);
    local_gemm_accumulate(ctx, w_km, di, out, m, k, n);
    actual = out;
  });
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_NEAR(expected[i], actual[i], 1e-12);
  }
}

}  // namespace
}  // namespace swdnn::conv
