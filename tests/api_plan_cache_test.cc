// Plan-cached dispatch through the handle API: rank-once memoization
// observable via the cache counters, the chosen-plan query, "plan_cache"
// trace events, the recorded (never silent) host fallback for shapes
// with no mesh mapping, and the ranked-fallback rescue after a fault.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/api/swdnn_api.h"
#include "src/conv/reference.h"
#include "src/sim/trace.h"
#include "src/util/rng.h"

namespace swdnn::api {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

/// A mesh-compatible problem on the 2x2 test mesh (batch plans with
/// bCo in {4, 2, 1} are executable, so ranked fallbacks exist).
struct Problem {
  explicit Problem(const conv::ConvShape& s) : shape(s) {
    util::Rng rng(911);
    input = conv::make_input(shape);
    filter = conv::make_filter(shape);
    rng.fill_uniform(input.data(), -1, 1);
    rng.fill_uniform(filter.data(), -1, 1);
    set_tensor4d_descriptor(x_desc, shape.ri, shape.ci, shape.ni,
                            shape.batch);
    set_filter_descriptor(w_desc, shape.kr, shape.kc, shape.ni, shape.no);
    set_tensor4d_descriptor(y_desc, shape.ro(), shape.co(), shape.no,
                            shape.batch);
  }
  Problem() : Problem(conv::ConvShape::from_output(4, 2, 2, 3, 4, 2, 2)) {}

  std::vector<double> expected() const {
    tensor::Tensor ref = conv::make_output(shape);
    conv::reference_forward(input, filter, ref, shape);
    return {ref.data().begin(), ref.data().end()};
  }

  conv::ConvShape shape;
  tensor::Tensor input, filter;
  TensorDescriptor x_desc, y_desc;
  FilterDescriptor w_desc;
};

class ApiPlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const arch::Sw26010Spec spec = mesh_spec(2);
    ASSERT_EQ(create(&handle_, &spec), Status::kSuccess);
  }
  void TearDown() override {
    EXPECT_EQ(destroy(handle_), Status::kSuccess);
  }

  std::vector<double> forward(const Problem& p,
                              Status expected = Status::kSuccess) {
    std::vector<double> y(
        static_cast<std::size_t>(p.shape.output_elements()));
    EXPECT_EQ(convolution_forward(handle_, p.x_desc, p.input.data().data(),
                                  p.w_desc, p.filter.data().data(), p.y_desc,
                                  y.data()),
              expected);
    return y;
  }

  PlanCacheCounters counters() {
    PlanCacheCounters c;
    EXPECT_EQ(plan_cache_counters(handle_, &c), Status::kSuccess);
    return c;
  }

  Handle* handle_ = nullptr;
};

TEST_F(ApiPlanCacheTest, RepeatedShapeRanksExactlyOnce) {
  // The acceptance criterion: N same-shape calls on one handle invoke
  // PlanChooser::rank once — every later call is a cache hit.
  const Problem p;
  const std::vector<double> expected = p.expected();
  for (int call = 0; call < 5; ++call) {
    const std::vector<double> y = forward(p);
    EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(y[i], expected[i], 1e-10);
    }
  }
  const PlanCacheCounters c = counters();
  EXPECT_EQ(c.misses, 1u);  // rank() ran once
  EXPECT_EQ(c.hits, 4u);
  EXPECT_EQ(c.entries, 1u);
  EXPECT_EQ(c.evictions, 0u);
}

TEST_F(ApiPlanCacheTest, DistinctShapesMissSeparately) {
  const Problem a;
  const Problem b(conv::ConvShape::from_output(4, 2, 2, 4, 4, 2, 2));
  forward(a);
  forward(b);
  forward(a);
  forward(b);
  const PlanCacheCounters c = counters();
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.entries, 2u);
}

TEST_F(ApiPlanCacheTest, LastPlanAlgoReportsTheCachedChoice) {
  EXPECT_EQ(last_plan_algo(handle_), PlanAlgo::kNone);  // nothing ran yet
  const Problem p;
  forward(p);
  // On the 2x2 mesh the channel-blocked incumbents leave only
  // Algorithm 2 executable (the image plan's bB grid starts far above
  // batch=4), and at this tiny No the filter-grained lowering models
  // ahead of it — the multigrain small-output regime.
  EXPECT_EQ(last_plan_algo(handle_), PlanAlgo::kFilterGrained);
  EXPECT_STREQ(plan_algo_name(last_plan_algo(handle_)), "filter-grained");
}

TEST_F(ApiPlanCacheTest, TracerSeesMissThenHit) {
  sim::EventTracer tracer;
  ASSERT_EQ(set_event_tracer(handle_, &tracer), Status::kSuccess);
  const Problem p;
  forward(p);
  forward(p);
  std::vector<std::string> dispatch;
  for (const auto& e : tracer.events()) {
    if (e.category == "plan_cache") dispatch.push_back(e.name);
  }
  ASSERT_EQ(dispatch.size(), 2u);
  EXPECT_EQ(dispatch[0], "miss");
  EXPECT_EQ(dispatch[1], "hit");
  // The attached tracer also captured the mesh launches themselves.
  bool saw_dma = false;
  for (const auto& e : tracer.events()) saw_dma |= (e.category == "dma");
  EXPECT_TRUE(saw_dma);

  // Detach: dispatch becomes invisible again.
  ASSERT_EQ(set_event_tracer(handle_, nullptr), Status::kSuccess);
  tracer.clear();
  forward(p);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST_F(ApiPlanCacheTest, UnmappableShapeFallsBackWithRecordedReason) {
  // Ni=3 cannot distribute over the 2-wide mesh and No=4096 overflows
  // every multigrain tile set: the host GEMM is the designed route, but
  // the reroute must be counted and diagnosable — the silent-masking
  // regression.
  const Problem p(conv::ConvShape::from_output(2, 3, 4096, 3, 3, 2, 2));
  sim::EventTracer tracer;
  ASSERT_EQ(set_event_tracer(handle_, &tracer), Status::kSuccess);
  const std::vector<double> y = forward(p);
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kHostGemm);
  EXPECT_EQ(last_plan_algo(handle_), PlanAlgo::kNone);
  EXPECT_NE(std::string(last_error_message(handle_)).find("host GEMM"),
            std::string::npos);

  FaultCounters fc;
  ASSERT_EQ(fault_counters(handle_, &fc), Status::kSuccess);
  EXPECT_EQ(fc.host_fallbacks, 1u);

  bool traced_fallback = false;
  for (const auto& e : tracer.events()) {
    traced_fallback |= (e.category == "plan_cache" && e.name ==
                        "host_fallback");
  }
  EXPECT_TRUE(traced_fallback);

  // And the result is still the right convolution.
  const std::vector<double> expected = p.expected();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(y[i], expected[i], 1e-10);
  }
}

TEST_F(ApiPlanCacheTest, RankedFallbackPlanRescuesAFaultedWinner) {
  // One fault budget per CPE and a no-retry policy: the cached winner's
  // launch faults, consuming the budget, and the next ranked plan (a
  // different LDM blocking) completes on the mesh — the degradation
  // ladder's middle rung, short of the host.
  const Problem p;
  sim::FaultPlan plan;
  plan.fail_first_dma = 1;
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  ASSERT_EQ(set_retry_policy(handle_, 1, 0), Status::kSuccess);

  sim::EventTracer tracer;
  ASSERT_EQ(set_event_tracer(handle_, &tracer), Status::kSuccess);
  const std::vector<double> y = forward(p);
  EXPECT_EQ(last_execution_route(handle_), ExecutionRoute::kSimulatedMesh);
  EXPECT_STRNE(last_error_message(handle_), "");  // rescue is recorded

  FaultCounters fc;
  ASSERT_EQ(fault_counters(handle_, &fc), Status::kSuccess);
  EXPECT_EQ(fc.plan_fallbacks, 1u);
  EXPECT_EQ(fc.host_fallbacks, 0u);

  bool traced_plan_fallback = false;
  for (const auto& e : tracer.events()) {
    traced_plan_fallback |= (e.category == "plan_cache" && e.name ==
                             "plan_fallback");
  }
  EXPECT_TRUE(traced_plan_fallback);

  const std::vector<double> expected = p.expected();
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(y[i], expected[i], 1e-10);
  }
}

TEST_F(ApiPlanCacheTest, CacheSurvivesFaultPlanChanges) {
  // set_fault_plan resets the fault counters but not the plan cache:
  // plans depend on the shape and the machine, not on the campaign.
  const Problem p;
  forward(p);
  sim::FaultPlan plan;  // benign empty plan
  ASSERT_EQ(set_fault_plan(handle_, &plan), Status::kSuccess);
  forward(p);
  const PlanCacheCounters c = counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 1u);
}

TEST_F(ApiPlanCacheTest, ObservabilityArgumentsAreValidated) {
  PlanCacheCounters c;
  EXPECT_EQ(plan_cache_counters(nullptr, &c), Status::kBadParam);
  EXPECT_EQ(plan_cache_counters(handle_, nullptr), Status::kBadParam);
  EXPECT_EQ(set_event_tracer(nullptr, nullptr), Status::kBadParam);
  EXPECT_EQ(last_plan_algo(nullptr), PlanAlgo::kNone);
}

TEST(PlanAlgoNames, AreDistinctAndStable) {
  EXPECT_STREQ(plan_algo_name(PlanAlgo::kNone), "none");
  EXPECT_STREQ(plan_algo_name(PlanAlgo::kDirect), "direct");
  EXPECT_STREQ(plan_algo_name(PlanAlgo::kImageSizeAware),
               "image-size-aware");
  EXPECT_STREQ(plan_algo_name(PlanAlgo::kBatchSizeAware),
               "batch-size-aware");
}

}  // namespace
}  // namespace swdnn::api
