// The fault-injection framework at the simulator level: deterministic
// replay, DMA retry-with-backoff, transient vs persistent launch
// failure, LDM capacity/bit-flip faults, regcomm stalls, and severed
// NoC links.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "src/conv/mesh_gemm_driver.h"
#include "src/sim/executor.h"
#include "src/sim/fault.h"
#include "src/sim/noc.h"
#include "src/util/rng.h"

namespace swdnn::sim {
namespace {

arch::Sw26010Spec mesh_spec(int dim) {
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = dim;
  spec.mesh_cols = dim;
  return spec;
}

/// A deterministic workload: every CPE round-trips its 32-double slice
/// of `global` through LDM (one aligned get + one aligned put).
LaunchStats run_round_trip(MeshExecutor& exec, std::vector<double>& global,
                           std::vector<double>& result) {
  return exec.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm().alloc_doubles(32);
    const std::size_t off = static_cast<std::size_t>(ctx.id()) * 32;
    ctx.dma_get({global.data() + off, 32}, buf);
    ctx.dma_put(buf, {result.data() + off, 32});
  });
}

TEST(FaultSite, NamesAreDistinct) {
  const FaultSite sites[] = {FaultSite::kDmaTransfer, FaultSite::kDmaMisalign,
                             FaultSite::kLdmCapacity, FaultSite::kLdmBitFlip,
                             FaultSite::kRegcommStall, FaultSite::kNocLink};
  for (std::size_t a = 0; a < 6; ++a) {
    ASSERT_NE(fault_site_name(sites[a]), nullptr);
    for (std::size_t b = a + 1; b < 6; ++b) {
      EXPECT_STRNE(fault_site_name(sites[a]), fault_site_name(sites[b]));
    }
  }
}

TEST(FaultInjector, SameSeedReplaysIdenticalEventTrace) {
  // Two independent injectors with the same plan, driving the same
  // workload over 64 concurrent CPE threads, must log exactly the same
  // events — the determinism the replay tests depend on.
  FaultPlan plan;
  plan.seed = 12345;
  plan.dma_fault_rate = 0.4;
  std::vector<std::vector<FaultEvent>> traces;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(plan);
    MeshExecutor exec(mesh_spec(4));
    exec.set_fault_injector(&injector);
    exec.set_retry_policy({/*max_attempts=*/8, /*backoff_cycles=*/4});
    std::vector<double> global(16 * 32, 1.0), result(16 * 32);
    run_round_trip(exec, global, result);
    traces.push_back(injector.events());
  }
  ASSERT_FALSE(traces[0].empty());
  ASSERT_EQ(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < traces[0].size(); ++i) {
    EXPECT_EQ(traces[0][i].site, traces[1][i].site) << "event " << i;
    EXPECT_EQ(traces[0][i].unit, traces[1][i].unit) << "event " << i;
    EXPECT_EQ(traces[0][i].sequence, traces[1][i].sequence) << "event " << i;
    EXPECT_EQ(traces[0][i].detail, traces[1][i].detail) << "event " << i;
  }
}

TEST(FaultInjector, DifferentSeedsProduceDifferentPlacement) {
  FaultPlan a, b;
  a.seed = 1;
  b.seed = 2;
  a.dma_fault_rate = b.dma_fault_rate = 0.5;
  FaultInjector ia(a), ib(b);
  std::vector<bool> da, db;
  for (std::uint64_t i = 0; i < 64; ++i) {
    da.push_back(ia.poll_dma_fault(0));
    db.push_back(ib.poll_dma_fault(0));
  }
  EXPECT_NE(da, db);
}

TEST(FaultInjector, ResetReplaysTheCampaignFromTheStart) {
  FaultPlan plan;
  plan.seed = 7;
  plan.dma_fault_rate = 0.5;
  FaultInjector injector(plan);
  std::vector<bool> first;
  for (int i = 0; i < 32; ++i) first.push_back(injector.poll_dma_fault(3));
  EXPECT_GT(injector.total_events(), 0u);
  injector.reset();
  EXPECT_EQ(injector.total_events(), 0u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(injector.poll_dma_fault(3), first[static_cast<std::size_t>(i)])
        << "poll " << i;
  }
}

TEST(FaultInjector, EventsSortedBySiteUnitSequence) {
  FaultPlan plan;
  plan.seed = 9;
  plan.dma_fault_rate = 0.6;
  plan.regcomm_stall_rate = 0.6;
  FaultInjector injector(plan);
  for (int cpe = 3; cpe >= 0; --cpe) {
    for (int i = 0; i < 8; ++i) {
      injector.poll_dma_fault(cpe);
      injector.poll_regcomm_stall(cpe);
    }
  }
  const auto events = injector.events();
  ASSERT_GT(events.size(), 1u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    const auto key = [](const FaultEvent& e) {
      return std::tuple(static_cast<int>(e.site), e.unit, e.sequence);
    };
    EXPECT_LT(key(events[i - 1]), key(events[i])) << "event " << i;
  }
}

TEST(DmaFaults, TransientFaultsAreAbsorbedByRetries) {
  // The first two DMA attempts on every CPE fault; with four attempts
  // allowed the transfers all land and the data is untouched.
  FaultPlan plan;
  plan.fail_first_dma = 2;
  FaultInjector injector(plan);
  MeshExecutor exec(mesh_spec(2));
  exec.set_fault_injector(&injector);
  exec.set_retry_policy({/*max_attempts=*/4, /*backoff_cycles=*/16});
  std::vector<double> global(4 * 32), result(4 * 32);
  for (std::size_t i = 0; i < global.size(); ++i) {
    global[i] = static_cast<double>(i);
  }
  const LaunchStats stats = run_round_trip(exec, global, result);
  EXPECT_FALSE(stats.failed);
  EXPECT_EQ(stats.dma_retries, 4u * 2u);  // 2 retried transfers per CPE
  EXPECT_GT(stats.fault_events, 0u);
  EXPECT_EQ(injector.count(FaultSite::kDmaTransfer), 4u * 2u);
  EXPECT_EQ(result, global);
}

TEST(DmaFaults, ExhaustedRetriesMarkTheLaunchPersistentlyFailed) {
  FaultPlan plan;
  plan.fail_first_dma = 100;  // every attempt the policy allows faults
  FaultInjector injector(plan);
  MeshExecutor exec(mesh_spec(2));
  exec.set_fault_injector(&injector);
  exec.set_retry_policy({/*max_attempts=*/3, /*backoff_cycles=*/16});
  std::vector<double> global(4 * 32, 1.0), result(4 * 32, 0.0);
  const LaunchStats stats = run_round_trip(exec, global, result);
  EXPECT_TRUE(stats.failed);
  EXPECT_TRUE(stats.persistent_fault);
  EXPECT_FALSE(stats.failure.empty());
}

TEST(DmaFaults, SingleFaultWithoutRetryPolicyIsTransient) {
  // max_attempts=1 means the policy never retried: the failure is a
  // one-shot transient, not an exhausted-retries persistent fault.
  FaultPlan plan;
  plan.fail_first_dma = 1;
  FaultInjector injector(plan);
  MeshExecutor exec(mesh_spec(2));
  exec.set_fault_injector(&injector);
  std::vector<double> global(4 * 32, 1.0), result(4 * 32, 0.0);
  const LaunchStats stats = run_round_trip(exec, global, result);
  EXPECT_TRUE(stats.failed);
  EXPECT_FALSE(stats.persistent_fault);
}

TEST(DmaFaults, MisalignFaultsDegradeDmaBandwidth) {
  std::vector<double> global(4 * 32, 1.0), result(4 * 32);
  MeshExecutor clean(mesh_spec(2));
  const double clean_seconds = run_round_trip(clean, global, result)
                                   .dma_seconds;

  FaultPlan plan;
  plan.dma_misalign_rate = 1.0;
  FaultInjector injector(plan);
  MeshExecutor faulty(mesh_spec(2));
  faulty.set_fault_injector(&injector);
  const LaunchStats stats = run_round_trip(faulty, global, result);
  EXPECT_FALSE(stats.failed);  // misalignment is slow, not wrong
  EXPECT_GT(stats.dma_seconds, clean_seconds);
  EXPECT_GT(injector.count(FaultSite::kDmaMisalign), 0u);
  EXPECT_EQ(result, global);
}

TEST(LdmFaults, CapacityLossFailsAllocationsInTheDeadRegion) {
  // 60 KB of each 64 KB arena is dead: an 8 KB allocation crosses the
  // 4 KB boundary, reports the fault, and the launch is marked failed —
  // but the kernel keeps running (it must drain its barriers).
  FaultPlan plan;
  plan.ldm_capacity_loss_bytes = 60 * 1024;
  FaultInjector injector(plan);
  MeshExecutor exec(mesh_spec(2));
  exec.set_fault_injector(&injector);
  std::atomic<int> completed{0};
  const LaunchStats stats = exec.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm().alloc_doubles(1024);
    buf[0] = 1.0;
    completed.fetch_add(1);
  });
  EXPECT_TRUE(stats.failed);
  EXPECT_TRUE(stats.persistent_fault);
  EXPECT_EQ(injector.count(FaultSite::kLdmCapacity), 4u);
  EXPECT_EQ(completed.load(), 4);
}

TEST(LdmFaults, BitFlipPoisonsOneWordOfAFreshAllocation) {
  FaultPlan plan;
  plan.ldm_bitflip_rate = 1.0;
  FaultInjector injector(plan);
  MeshExecutor exec(mesh_spec(2));
  exec.set_fault_injector(&injector);
  std::atomic<int> poisoned{0};
  const LaunchStats stats = exec.run([&](CpeContext& ctx) {
    auto buf = ctx.ldm().alloc_doubles(8);
    if (std::isnan(buf[4])) poisoned.fetch_add(1);
  });
  EXPECT_TRUE(stats.failed);
  EXPECT_EQ(poisoned.load(), 4);
  EXPECT_EQ(injector.count(FaultSite::kLdmBitFlip), 4u);
}

TEST(RegcommFaults, StallsChargeExtraCycles) {
  const auto ring_kernel = [](CpeContext& ctx) {
    // Each CPE sends right around its row ring and receives one value.
    const Vec4 v{1, 2, 3, 4};
    ctx.put_row((ctx.col() + 1) % ctx.mesh_cols(), v);
    ctx.get_row();
  };
  MeshExecutor clean(mesh_spec(2));
  const std::uint64_t clean_cycles = clean.run(ring_kernel).max_compute_cycles;

  FaultPlan plan;
  plan.regcomm_stall_rate = 1.0;
  plan.regcomm_stall_cycles = 5000;
  FaultInjector injector(plan);
  MeshExecutor faulty(mesh_spec(2));
  faulty.set_fault_injector(&injector);
  const LaunchStats stats = faulty.run(ring_kernel);
  EXPECT_FALSE(stats.failed);  // a stall delays, it does not corrupt
  EXPECT_GE(stats.max_compute_cycles, clean_cycles + 5000);
  EXPECT_EQ(injector.count(FaultSite::kRegcommStall), 4u);
}

TEST(NocFaults, SeveredLinkFailsThePartitionedLaunchUpFront) {
  FaultPlan plan;
  plan.dead_noc_links = {1};
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.poll_noc_link(0));
  EXPECT_TRUE(injector.poll_noc_link(1));

  NocSystem noc(mesh_spec(2));
  noc.set_fault_injector(&injector);
  try {
    noc.run_partitioned(8, 2, [](int, RowPartition) {
      return [](CpeContext&) {};
    });
    FAIL() << "expected LaunchFault";
  } catch (const LaunchFault& e) {
    EXPECT_TRUE(e.persistent());
  }
  EXPECT_GT(injector.count(FaultSite::kNocLink), 0u);
}

TEST(RetryBackoff, MatchesNaiveShiftInTheSafeRange) {
  const RetryPolicy policy{/*max_attempts=*/8, /*backoff_cycles=*/16};
  EXPECT_EQ(retry_backoff_cycles(policy, 1), 16u);
  EXPECT_EQ(retry_backoff_cycles(policy, 2), 32u);
  EXPECT_EQ(retry_backoff_cycles(policy, 5), 256u);
}

TEST(RetryBackoff, SaturatesInsteadOfOverflowing) {
  // backoff_cycles << (attempt-1) is UB once the shift reaches 64 and
  // silently wraps before that; the helper must saturate instead.
  const RetryPolicy policy{/*max_attempts=*/200, /*backoff_cycles=*/16};
  EXPECT_EQ(retry_backoff_cycles(policy, 60), 16ull << 59);  // 2^63: last fit
  EXPECT_EQ(retry_backoff_cycles(policy, 61), UINT64_MAX);   // 2^64 wraps
  EXPECT_EQ(retry_backoff_cycles(policy, 65), UINT64_MAX);   // shift == 64
  EXPECT_EQ(retry_backoff_cycles(policy, 1000), UINT64_MAX);
  const RetryPolicy zero{/*max_attempts=*/200, /*backoff_cycles=*/0};
  EXPECT_EQ(retry_backoff_cycles(zero, 1000), 0u);
  const RetryPolicy max{/*max_attempts=*/200, /*backoff_cycles=*/UINT64_MAX};
  EXPECT_EQ(retry_backoff_cycles(max, 2), UINT64_MAX);
}

TEST(RetryBackoff, DeepRetryLaddersRunWithoutOverflow) {
  // A policy deep enough that the old shift was undefined behaviour:
  // the launch must complete (failed, retries exhausted) with the CPE
  // cycle counters pinned at saturation rather than wrapped.
  FaultPlan plan;
  plan.fail_first_dma = 1000;  // every attempt faults
  FaultInjector injector(plan);
  MeshExecutor exec(mesh_spec(2));
  exec.set_fault_injector(&injector);
  exec.set_retry_policy({/*max_attempts=*/80, /*backoff_cycles=*/16});
  std::vector<double> global(4 * 32, 1.0), result(4 * 32, 0.0);
  const LaunchStats stats = run_round_trip(exec, global, result);
  EXPECT_TRUE(stats.failed);
  EXPECT_TRUE(stats.persistent_fault);
  // Both the get and the put exhaust their 80 attempts on every CPE.
  EXPECT_EQ(stats.dma_retries, 4u * 79u * 2u);
  EXPECT_EQ(stats.max_compute_cycles, UINT64_MAX);  // saturated, not wrapped
}

// -- Fault equivalence of the bulk bus path ---------------------------------
//
// The bulk span primitives poll the stall site once per 256-bit message,
// exactly like the Vec4 reference loop, so an identical campaign must
// produce an identical event trace and identical stats on both paths.

LaunchStats run_faulty_mesh_gemm(FaultInjector& injector, bool use_pool,
                                 conv::BusPathMode mode,
                                 std::vector<double>& out) {
  util::Rng rng(21);
  const std::int64_t m = 13, k = 29, n = 11;
  std::vector<double> a(static_cast<std::size_t>(k * m));
  std::vector<double> b(static_cast<std::size_t>(k * n));
  rng.fill_normal(a, 0.0, 1.0);
  rng.fill_normal(b, 0.0, 1.0);
  out.assign(static_cast<std::size_t>(m * n), 0.0);
  MeshExecutor exec(mesh_spec(4));
  exec.set_use_worker_pool(use_pool);
  exec.set_fault_injector(&injector);
  exec.set_retry_policy({/*max_attempts=*/4, /*backoff_cycles=*/8});
  conv::MeshGemmOptions options;
  options.bus_mode = mode;
  return conv::mesh_gemm(exec, a, b, out, m, k, n, options);
}

void expect_same_events(const std::vector<FaultEvent>& a,
                        const std::vector<FaultEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site, b[i].site) << "event " << i;
    EXPECT_EQ(a[i].unit, b[i].unit) << "event " << i;
    EXPECT_EQ(a[i].sequence, b[i].sequence) << "event " << i;
    EXPECT_EQ(a[i].detail, b[i].detail) << "event " << i;
  }
}

TEST(BulkPathFaults, StallCampaignIdenticalOnBulkAndReferencePaths) {
  FaultPlan plan;
  plan.seed = 99;
  plan.regcomm_stall_rate = 0.1;
  plan.regcomm_stall_cycles = 128;
  FaultInjector injector(plan);

  std::vector<double> out_bulk, out_ref;
  const LaunchStats bulk = run_faulty_mesh_gemm(
      injector, /*use_pool=*/true, conv::BusPathMode::kBulkSpan, out_bulk);
  const auto events_bulk = injector.events();
  injector.reset();  // replay the identical campaign on the oracle path
  const LaunchStats ref =
      run_faulty_mesh_gemm(injector, /*use_pool=*/false,
                           conv::BusPathMode::kVec4Reference, out_ref);
  const auto events_ref = injector.events();

  ASSERT_GT(events_bulk.size(), 0u);
  expect_same_events(events_bulk, events_ref);
  EXPECT_EQ(out_bulk, out_ref);
  EXPECT_EQ(bulk.max_compute_cycles, ref.max_compute_cycles);
  EXPECT_EQ(bulk.regcomm_messages, ref.regcomm_messages);
  EXPECT_EQ(bulk.fault_events, ref.fault_events);
}

TEST(BulkPathFaults, DmaAndLdmCampaignIdenticalOnBulkAndReferencePaths) {
  FaultPlan plan;
  plan.seed = 5;
  plan.dma_fault_rate = 0.05;
  plan.dma_misalign_rate = 0.1;
  plan.regcomm_stall_rate = 0.05;
  FaultInjector injector(plan);

  std::vector<double> out_bulk, out_ref;
  const LaunchStats bulk = run_faulty_mesh_gemm(
      injector, /*use_pool=*/true, conv::BusPathMode::kBulkSpan, out_bulk);
  const auto events_bulk = injector.events();
  injector.reset();
  const LaunchStats ref =
      run_faulty_mesh_gemm(injector, /*use_pool=*/false,
                           conv::BusPathMode::kVec4Reference, out_ref);
  const auto events_ref = injector.events();

  ASSERT_GT(events_bulk.size(), 0u);
  expect_same_events(events_bulk, events_ref);
  EXPECT_EQ(out_bulk, out_ref);
  EXPECT_EQ(bulk.failed, ref.failed);
  EXPECT_EQ(bulk.dma_retries, ref.dma_retries);
  EXPECT_EQ(bulk.max_compute_cycles, ref.max_compute_cycles);
  EXPECT_EQ(bulk.dma.misaligned_requests, ref.dma.misaligned_requests);
  EXPECT_EQ(bulk.dma_seconds, ref.dma_seconds);
}

TEST(NocFaults, HealthyLinksStillRun) {
  FaultPlan plan;
  plan.dead_noc_links = {3};  // only CG 3 is dead; a 2-CG run is fine
  FaultInjector injector(plan);
  NocSystem noc(mesh_spec(2));
  noc.set_fault_injector(&injector);
  std::atomic<int> launches{0};
  noc.run_partitioned(8, 2, [&](int, RowPartition) {
    launches.fetch_add(1);
    return [](CpeContext&) {};
  });
  EXPECT_EQ(launches.load(), 2);
}

}  // namespace
}  // namespace swdnn::sim
