// The data-parallel substrate: ring all-reduce correctness, the
// interconnect cost model, and synchronous-SGD equivalence with
// single-node full-batch training.

#include <gtest/gtest.h>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/relu.h"
#include "src/parallel/data_parallel.h"
#include "src/util/rng.h"

namespace swdnn::parallel {
namespace {

TEST(RingAllreduce, SumAcrossRanks) {
  for (int n : {1, 2, 3, 4, 7}) {
    for (std::size_t len : {1u, 4u, 9u, 64u}) {
      std::vector<std::vector<double>> data(static_cast<std::size_t>(n));
      double expected_base = 0;
      for (int r = 0; r < n; ++r) {
        data[static_cast<std::size_t>(r)].resize(len);
        for (std::size_t i = 0; i < len; ++i) {
          data[static_cast<std::size_t>(r)][i] =
              static_cast<double>(r + 1) * static_cast<double>(i + 1);
        }
        expected_base += static_cast<double>(r + 1);
      }
      std::vector<std::span<double>> spans;
      for (auto& d : data) spans.emplace_back(d);
      ring_allreduce(spans, ReduceOp::kSum);
      for (int r = 0; r < n; ++r) {
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_NEAR(data[static_cast<std::size_t>(r)][i],
                      expected_base * static_cast<double>(i + 1), 1e-10)
              << "n=" << n << " len=" << len << " rank=" << r << " i=" << i;
        }
      }
    }
  }
}

TEST(RingAllreduce, AverageAcrossRanks) {
  std::vector<std::vector<double>> data = {{2, 4}, {4, 8}, {6, 12}};
  std::vector<std::span<double>> spans;
  for (auto& d : data) spans.emplace_back(d);
  ring_allreduce(spans, ReduceOp::kAverage);
  for (const auto& d : data) {
    EXPECT_NEAR(d[0], 4.0, 1e-12);
    EXPECT_NEAR(d[1], 8.0, 1e-12);
  }
}

TEST(RingAllreduce, RandomValuesMatchDirectSum) {
  util::Rng rng(2026);
  const int n = 5;
  const std::size_t len = 37;  // deliberately not divisible by n
  std::vector<std::vector<double>> data(n, std::vector<double>(len));
  std::vector<double> expected(len, 0.0);
  for (auto& d : data) {
    rng.fill_uniform(d, -1, 1);
    for (std::size_t i = 0; i < len; ++i) expected[i] += d[i];
  }
  std::vector<std::span<double>> spans;
  for (auto& d : data) spans.emplace_back(d);
  ring_allreduce(spans, ReduceOp::kSum);
  for (const auto& d : data) {
    for (std::size_t i = 0; i < len; ++i) {
      ASSERT_NEAR(d[i], expected[i], 1e-10);
    }
  }
}

TEST(RingAllreduce, RejectsMismatchedLengths) {
  std::vector<double> a(4), b(5);
  std::vector<std::span<double>> spans = {a, b};
  EXPECT_THROW(ring_allreduce(spans), std::invalid_argument);
  EXPECT_THROW(ring_allreduce({}), std::invalid_argument);
}

TEST(CostModel, SingleNodeIsFree) {
  EXPECT_EQ(ring_allreduce_seconds(1 << 20, 1), 0.0);
}

TEST(CostModel, BandwidthTermDominatesLargeMessages) {
  // 2(N-1)/N * bytes / bw: for large messages the time is nearly
  // node-count independent (the ring's hallmark).
  InterconnectSpec spec;
  spec.hop_latency_us = 0;
  const std::int64_t bytes = 1 << 30;
  const double t4 = ring_allreduce_seconds(bytes, 4, spec);
  const double t16 = ring_allreduce_seconds(bytes, 16, spec);
  EXPECT_NEAR(t16 / t4, (2.0 * 15 / 16) / (2.0 * 3 / 4), 1e-9);
  EXPECT_LT(t16 / t4, 1.3);
}

TEST(CostModel, LatencyTermGrowsWithNodes) {
  InterconnectSpec spec;
  spec.hop_latency_us = 10;
  EXPECT_GT(ring_allreduce_seconds(8, 16, spec),
            ring_allreduce_seconds(8, 4, spec));
}

TEST(CostModel, EfficiencyFallsWithNodesAtFixedCompute) {
  const std::int64_t grad_bytes = 64 << 20;  // a VGG-scale gradient
  const double compute = 0.05;
  double prev = 1.0;
  for (int nodes : {2, 8, 32}) {
    const double eff = data_parallel_efficiency(compute, grad_bytes, nodes);
    EXPECT_LT(eff, prev);
    EXPECT_GT(eff, 0.1);
    prev = eff;
  }
}

std::unique_ptr<dnn::Network> make_net(std::int64_t batch) {
  util::Rng rng(555);  // fixed seed: replicas identical
  auto net = std::make_unique<dnn::Network>();
  // 4x4 input images (SyntheticBars size 4) -> 2x2 conv output.
  net->emplace<dnn::Convolution>(
      conv::ConvShape::from_output(batch, 1, 2, 2, 2, 3, 3), rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(2 * 2 * 2, 3, rng);
  return net;
}

TEST(DataParallel, TwoNodesMatchSingleNodeFullBatch) {
  // Synchronous SGD with gradient averaging over equal shards is
  // mathematically identical to full-batch training (the loss is a
  // per-batch mean): verify to fp tolerance.
  const std::int64_t batch = 8;
  dnn::SyntheticBars data(4, 3, 0.05, 66);
  const dnn::Batch full = data.sample(batch);

  // Single node, full batch.
  auto single = make_net(batch);
  dnn::Sgd opt(0.1);
  dnn::Trainer trainer(*single, opt);
  trainer.train_step(full);

  // Two nodes, half shards.
  DataParallelTrainer dp(2, [] { return make_net(4); }, 0.1);
  std::vector<dnn::Batch> shards(2);
  for (int node = 0; node < 2; ++node) {
    shards[node].images = tensor::Tensor({4, 4, 1, 4});
    for (std::int64_t r = 0; r < 4; ++r)
      for (std::int64_t c = 0; c < 4; ++c)
        for (std::int64_t b = 0; b < 4; ++b)
          shards[node].images.at(r, c, 0, b) =
              full.images.at(r, c, 0, node * 4 + b);
    shards[node].labels.assign(full.labels.begin() + node * 4,
                               full.labels.begin() + (node + 1) * 4);
  }
  dp.train_step(shards);

  // Parameters must match the single-node result.
  const auto ps = single->params();
  const auto pd = dp.replica(0).params();
  ASSERT_EQ(ps.size(), pd.size());
  for (std::size_t p = 0; p < ps.size(); ++p) {
    EXPECT_LE(ps[p].param->max_abs_diff(*pd[p].param), 1e-12)
        << "param " << p;
  }
  // And the replicas stay in lockstep.
  EXPECT_LE(dp.max_replica_divergence(), 1e-12);
}

TEST(DataParallel, ReplicasStayInSyncOverManySteps) {
  DataParallelTrainer dp(3, [] { return make_net(2); }, 0.2, 0.9);
  dnn::SyntheticBars data(4, 3, 0.05, 67);
  for (int step = 0; step < 10; ++step) {
    std::vector<dnn::Batch> shards;
    for (int node = 0; node < 3; ++node) shards.push_back(data.sample(2));
    const auto result = dp.train_step(shards);
    EXPECT_GE(result.comm_seconds, 0.0);
  }
  EXPECT_LE(dp.max_replica_divergence(), 1e-12);
}

TEST(DataParallel, GradientBytesCountAllParameters) {
  DataParallelTrainer dp(2, [] { return make_net(2); }, 0.1);
  // conv filter 3*3*1*2 + fc weights 3*8 + fc bias 3 = 45 doubles.
  EXPECT_EQ(dp.gradient_bytes(), (3 * 3 * 1 * 2 + 3 * 8 + 3) * 8);
}

TEST(DataParallel, RejectsWrongShardCount) {
  DataParallelTrainer dp(2, [] { return make_net(2); }, 0.1);
  std::vector<dnn::Batch> shards(1);
  EXPECT_THROW(dp.train_step(shards), std::invalid_argument);
  EXPECT_THROW(
      DataParallelTrainer(0, [] { return make_net(2); }, 0.1),
      std::invalid_argument);
}

}  // namespace
}  // namespace swdnn::parallel
