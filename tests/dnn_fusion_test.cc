// Fusion-correctness differential suite: every fusible pattern the
// graph passes collapse (conv+bias+ReLU, FC+activation, elided pads)
// must produce output bitwise-identical to the eager path, patterns the
// passes cannot prove safe (strided conv) must be left unfused and
// still agree, and the passes must announce themselves through the
// tracer with JSON-safe names.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/dnn/activations.h"
#include "src/dnn/backend_context.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/padding.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/sim/trace.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

bool bitwise_equal(const tensor::Tensor& a, const tensor::Tensor& b) {
  if (a.dims() != b.dims()) return false;
  return std::memcmp(a.data().data(), b.data().data(),
                     static_cast<std::size_t>(a.size()) * sizeof(double)) == 0;
}

tensor::Tensor random_tensor(const std::vector<std::int64_t>& dims,
                             std::uint64_t seed) {
  tensor::Tensor t(dims);
  util::Rng rng(seed);
  rng.fill_uniform(t.data(), -1, 1);
  return t;
}

/// Runs `steps` forward+backward rounds on a compiled net and an
/// identically-seeded eager twin, asserting bitwise identity of
/// outputs, input gradients, and every parameter gradient each round.
void expect_bitwise_differential(Network& compiled, Network& eager,
                                 const std::vector<std::int64_t>& in_dims,
                                 const std::vector<std::int64_t>& out_dims,
                                 int steps = 2) {
  for (int s = 0; s < steps; ++s) {
    const tensor::Tensor input =
        random_tensor(in_dims, 100 + static_cast<std::uint64_t>(s));
    const tensor::Tensor y_c = compiled.forward(input);
    const tensor::Tensor y_e = eager.forward(input);
    EXPECT_TRUE(bitwise_equal(y_c, y_e)) << "forward, step " << s;

    const tensor::Tensor d_out =
        random_tensor(out_dims, 500 + static_cast<std::uint64_t>(s));
    const tensor::Tensor dx_c = compiled.backward(d_out);
    const tensor::Tensor dx_e = eager.backward(d_out);
    EXPECT_TRUE(bitwise_equal(dx_c, dx_e)) << "backward, step " << s;

    const auto params_c = compiled.params();
    const auto params_e = eager.params();
    ASSERT_EQ(params_c.size(), params_e.size());
    for (std::size_t p = 0; p < params_c.size(); ++p) {
      EXPECT_TRUE(bitwise_equal(*params_c[p].grad, *params_e[p].grad))
          << "param " << p << ", step " << s;
    }
  }
}

conv::ConvShape small_conv_shape() {
  conv::ConvShape shape;
  shape.batch = 4;
  shape.ni = 3;
  shape.no = 5;
  shape.ri = 10;
  shape.ci = 10;
  shape.kr = 3;
  shape.kc = 3;
  return shape;
}

TEST(DnnFusion, ConvBiasReluFusesAndMatchesEagerBitwise) {
  auto make = [] {
    auto net = std::make_unique<Network>();
    util::Rng rng(41);
    net->emplace<Convolution>(small_conv_shape(), rng,
                              ConvBackend::kHostIm2col, /*with_bias=*/true);
    net->emplace<Relu>();
    return net;
  };
  auto compiled = make();
  auto eager = make();
  const CompiledStats& stats = compiled->compile({10, 10, 3, 4});
  EXPECT_EQ(stats.fused_conv_act, 1u);
  EXPECT_EQ(stats.graph_nodes, 1u);  // two layers, one node
  expect_bitwise_differential(*compiled, *eager, {10, 10, 3, 4},
                              {8, 8, 5, 4});
}

TEST(DnnFusion, FcActivationPairsFuseAndMatchEagerBitwise) {
  // Each fusible FC epilogue: ReLU (mask epilogue inside the backend
  // call), tanh and sigmoid (in-place epilogue after the dispatch).
  auto run = [](auto add_act) {
    auto make = [&] {
      auto net = std::make_unique<Network>();
      util::Rng rng(43);
      net->emplace<FullyConnected>(24, 6, rng);
      add_act(*net);
      return net;
    };
    auto compiled = make();
    auto eager = make();
    const CompiledStats& stats = compiled->compile({24, 5});
    EXPECT_EQ(stats.fused_fc_act, 1u);
    EXPECT_EQ(stats.graph_nodes, 1u);
    expect_bitwise_differential(*compiled, *eager, {24, 5}, {6, 5});
  };
  run([](Network& n) { n.emplace<Relu>(); });
  run([](Network& n) { n.emplace<Tanh>(); });
  run([](Network& n) { n.emplace<Sigmoid>(); });
}

TEST(DnnFusion, ElidedPadMatchesEagerAcrossSteps) {
  // zeropad -> conv(+bias) -> relu: the pad's output slot is pinned and
  // its borders zeroed once at compile; several steps with different
  // inputs must stay bitwise-equal to eager (stale or scribbled borders
  // would diverge immediately).
  auto make = [] {
    auto net = std::make_unique<Network>();
    util::Rng rng(47);
    conv::ConvShape shape;
    shape.batch = 3;
    shape.ni = 2;
    shape.no = 4;
    shape.ri = 10;
    shape.ci = 10;
    shape.kr = 3;
    shape.kc = 3;
    net->emplace<ZeroPad2d>(1);  // 8x8 -> 10x10: 'same' for the 3x3
    net->emplace<Convolution>(shape, rng, ConvBackend::kHostIm2col,
                              /*with_bias=*/true);
    net->emplace<Relu>();
    return net;
  };
  auto compiled = make();
  auto eager = make();
  const CompiledStats& stats = compiled->compile({8, 8, 2, 3});
  EXPECT_EQ(stats.elided_pads, 1u);
  EXPECT_EQ(stats.fused_conv_act, 1u);
  EXPECT_EQ(stats.graph_nodes, 2u);  // pad node + fused conv+relu node
  expect_bitwise_differential(*compiled, *eager, {8, 8, 2, 3}, {8, 8, 4, 3},
                              /*steps=*/3);
}

TEST(DnnFusion, StridedConvMustNotFuseAndStillMatches) {
  // Stride-2 conv sits outside the API boundary, so the fusion pass has
  // nothing safe to collapse: the pair must stay two nodes and the
  // (eager-kernel-backed) compiled path must still agree bitwise.
  auto make = [] {
    auto net = std::make_unique<Network>();
    util::Rng rng(53);
    conv::ConvShape shape;
    shape.batch = 3;
    shape.ni = 2;
    shape.no = 4;
    shape.ri = 9;
    shape.ci = 9;
    shape.kr = 3;
    shape.kc = 3;
    shape.stride_r = 2;
    shape.stride_c = 2;
    net->emplace<Convolution>(shape, rng, ConvBackend::kHostIm2col,
                              /*with_bias=*/true);
    net->emplace<Relu>();
    return net;
  };
  auto compiled = make();
  auto eager = make();
  const CompiledStats& stats = compiled->compile({9, 9, 2, 3});
  EXPECT_EQ(stats.fused_conv_act, 0u);
  EXPECT_EQ(stats.graph_nodes, 2u);
  expect_bitwise_differential(*compiled, *eager, {9, 9, 2, 3}, {4, 4, 4, 3});
}

TEST(DnnFusion, RaggedChainFusesOnlyTheLegalPairs) {
  // conv+relu fuse; pooling breaks the chain; fc+tanh fuse; softmax is
  // not a fusible epilogue and stays single.
  Network net;
  util::Rng rng(59);
  conv::ConvShape shape = small_conv_shape();
  net.emplace<Convolution>(shape, rng, ConvBackend::kHostIm2col,
                           /*with_bias=*/true);
  net.emplace<Relu>();
  net.emplace<MaxPooling>(2);  // 8x8x5 -> 4x4x5
  net.emplace<FullyConnected>(80, 10, rng);
  net.emplace<Tanh>();
  net.emplace<Softmax>();
  const CompiledStats& stats = net.compile({10, 10, 3, 4});
  EXPECT_EQ(stats.fused_conv_act, 1u);
  EXPECT_EQ(stats.fused_fc_act, 1u);
  EXPECT_EQ(stats.graph_nodes, 4u);  // 6 layers - 2 fusions
  EXPECT_EQ(stats.arena_slots, 2 * (stats.graph_nodes + 1));
}

TEST(DnnFusion, FuseOptionOffKeepsOneNodePerLayerAndStillMatches) {
  auto make = [] {
    auto net = std::make_unique<Network>();
    util::Rng rng(61);
    net->emplace<Convolution>(small_conv_shape(), rng,
                              ConvBackend::kHostIm2col, /*with_bias=*/true);
    net->emplace<Relu>();
    return net;
  };
  auto compiled = make();
  auto eager = make();
  CompileOptions options;
  options.fuse = false;
  const CompiledStats& stats = compiled->compile({10, 10, 3, 4}, options);
  EXPECT_EQ(stats.fused_conv_act, 0u);
  EXPECT_EQ(stats.elided_pads, 0u);
  EXPECT_EQ(stats.graph_nodes, 2u);
  expect_bitwise_differential(*compiled, *eager, {10, 10, 3, 4},
                              {8, 8, 5, 4});
}

TEST(DnnFusion, PassesEmitFusionAndAutotuneTraceInstants) {
  Network net;
  util::Rng rng(67);
  net.emplace<ZeroPad2d>(1);
  conv::ConvShape shape;
  shape.batch = 3;
  shape.ni = 2;
  shape.no = 4;
  shape.ri = 10;
  shape.ci = 10;
  shape.kr = 3;
  shape.kc = 3;
  net.emplace<Convolution>(shape, rng, ConvBackend::kHostIm2col,
                           /*with_bias=*/true);
  net.emplace<Relu>();

  sim::EventTracer tracer;
  CompileOptions options;
  options.tracer = &tracer;
  net.compile({8, 8, 2, 3}, options);

  bool saw_fuse = false, saw_elide = false, saw_autotune = false;
  for (const sim::TraceEvent& event : tracer.events()) {
    if (event.category == "fusion") {
      if (event.name.find("fuse conv#1+relu#2") != std::string::npos) {
        saw_fuse = true;
      }
      if (event.name.find("elide zeropad#0") != std::string::npos) {
        saw_elide = true;
      }
    }
    if (event.category == "autotune" &&
        event.name.find("tune") != std::string::npos) {
      saw_autotune = true;
    }
  }
  EXPECT_TRUE(saw_fuse);
  EXPECT_TRUE(saw_elide);
  EXPECT_TRUE(saw_autotune);
  EXPECT_GT(net.compiled_stats().autotuned_shapes, 0u);
}

TEST(DnnFusion, TraceJsonEscapesPassAndNodeNames) {
  // Regression: pass/node names flow into the Chrome-trace JSON export
  // verbatim. Names with quotes, backslashes, and control characters
  // must come out escaped — a raw quote would corrupt the document.
  sim::EventTracer tracer;
  tracer.record_instant(0, "fusion", "fuse conv\"quoted\"#0+relu\\bs#1");
  tracer.record_instant(0, "autotune", "tune shape\tB=4\nrb_b=16");
  const std::string json = tracer.to_chrome_json(1.5);
  EXPECT_NE(json.find("fuse conv\\\"quoted\\\"#0+relu\\\\bs#1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("tune shape\\tB=4\\nrb_b=16"), std::string::npos)
      << json;
  // No raw (unescaped) tab/newline survives inside the document.
  EXPECT_EQ(json.find('\t'), std::string::npos);
  for (const char c : json) EXPECT_NE(c, '\r');
}

}  // namespace
}  // namespace swdnn::dnn
