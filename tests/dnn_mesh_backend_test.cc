// End-to-end training through the SIMULATED machine: conv forward AND
// backward on the mesh, FC on the distributed GEMM — the full "swDNN
// accelerates training" story, cross-checked against the host backends.

#include <gtest/gtest.h>

#include "src/conv/reference.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/util/rng.h"

namespace swdnn::dnn {
namespace {

TEST(MeshBackend, ConvBackwardMatchesHostBackend) {
  // Same weights, same input, same upstream gradient: the two backends
  // must produce identical parameter and input gradients.
  const conv::ConvShape shape =
      conv::ConvShape::from_output(8, 8, 8, 2, 2, 2, 2);
  util::Rng rng_a(91), rng_b(91), rng_data(92);
  Convolution host(shape, rng_a, ConvBackend::kHostIm2col);
  Convolution mesh(shape, rng_b, ConvBackend::kSimulatedMesh);

  tensor::Tensor x = conv::make_input(shape);
  rng_data.fill_uniform(x.data(), -1, 1);
  tensor::Tensor g = conv::make_output(shape);
  rng_data.fill_uniform(g.data(), -1, 1);

  host.forward(x);
  mesh.forward(x);
  const tensor::Tensor dx_host = host.backward(g);
  const tensor::Tensor dx_mesh = mesh.backward(g);
  EXPECT_LE(dx_host.max_abs_diff(dx_mesh), 1e-10);

  const auto ph = host.params();
  const auto pm = mesh.params();
  ASSERT_EQ(ph.size(), 1u);
  ASSERT_EQ(pm.size(), 1u);
  EXPECT_LE(ph[0].grad->max_abs_diff(*pm[0].grad), 1e-10);
}

TEST(MeshBackend, FcForwardMatchesHostBackend) {
  util::Rng rng_a(93), rng_b(93), rng_data(94);
  FullyConnected host(12, 5, rng_a, FcBackend::kHostGemm);
  FullyConnected mesh(12, 5, rng_b, FcBackend::kSimulatedMesh);
  tensor::Tensor x({12, 7});
  rng_data.fill_uniform(x.data(), -1, 1);
  const tensor::Tensor yh = host.forward(x);
  const tensor::Tensor ym = mesh.forward(x);
  EXPECT_LE(yh.max_abs_diff(ym), 1e-10);
}

TEST(MeshBackend, FcMeshTrainsALinearFit) {
  // The mesh FC must be usable in a real optimization loop.
  util::Rng rng(95);
  FullyConnected fc(1, 1, rng, FcBackend::kSimulatedMesh);
  tensor::Tensor x({1, 8}), y({1, 8});
  for (std::int64_t b = 0; b < 8; ++b) {
    x.at(0, b) = static_cast<double>(b) / 8.0;
    y.at(0, b) = -1.5 * x.at(0, b);
  }
  for (int step = 0; step < 150; ++step) {
    const tensor::Tensor pred = fc.forward(x);
    tensor::Tensor g({1, 8});
    for (std::int64_t b = 0; b < 8; ++b) {
      g.at(0, b) = 2.0 * (pred.at(0, b) - y.at(0, b)) / 8.0;
    }
    fc.backward(g);
    for (auto& p : fc.params()) {
      for (std::int64_t i = 0; i < p.param->size(); ++i) {
        p.param->data()[i] -= 0.5 * p.grad->data()[i];
      }
    }
  }
  EXPECT_NEAR(fc.weights().at(0, 0), -1.5, 0.1);
}

TEST(MeshBackend, ConvTrainingStepReducesLoss) {
  // One full SGD step through the mesh-backend conv must reduce the
  // quadratic loss toward a fixed target, proving the gradients point
  // the right way.
  const conv::ConvShape shape =
      conv::ConvShape::from_output(8, 8, 8, 2, 2, 2, 2);
  util::Rng rng(96);
  Convolution layer(shape, rng, ConvBackend::kSimulatedMesh);
  tensor::Tensor x = conv::make_input(shape);
  rng.fill_uniform(x.data(), -1, 1);
  tensor::Tensor target = conv::make_output(shape);
  rng.fill_uniform(target.data(), -1, 1);

  auto loss_of = [&](const tensor::Tensor& pred) {
    double loss = 0;
    for (std::int64_t i = 0; i < pred.size(); ++i) {
      const double d = pred.data()[i] - target.data()[i];
      loss += d * d;
    }
    return loss;
  };
  const tensor::Tensor y0 = layer.forward(x);
  const double before = loss_of(y0);
  tensor::Tensor g(y0.dims());
  for (std::int64_t i = 0; i < g.size(); ++i) {
    g.data()[i] = 2.0 * (y0.data()[i] - target.data()[i]);
  }
  layer.backward(g);
  for (auto& p : layer.params()) {
    for (std::int64_t i = 0; i < p.param->size(); ++i) {
      p.param->data()[i] -= 0.01 * p.grad->data()[i];
    }
  }
  const double after = loss_of(layer.forward(x));
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace swdnn::dnn
