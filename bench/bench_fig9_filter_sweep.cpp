// Reproduces paper Fig. 9: double-precision convolution throughput for
// filter sizes 3x3 .. 21x21 (30 configurations), swDNN vs the modeled
// cuDNNv5-on-K40m baseline. B = 128, 64x64 output images.
//
// Shape to reproduce: swDNN holds its throughput as the filter grows
// (the mesh GEMM is filter-size agnostic) while the cuDNN baseline
// collapses — the speedup rises toward the paper's 9.75x extreme.

#include <algorithm>
#include <cstdio>

#include "src/conv/swconv.h"
#include "src/perf/k40m.h"
#include "src/util/table.h"
#include "workloads.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  using swdnn::util::fmt_speedup;

  swdnn::conv::SwConvolution sw;
  swdnn::perf::K40mCudnnModel k40;

  std::printf("=== Fig. 9: conv performance vs filter size "
              "(B=128, out 64x64) ===\n\n");

  // Per-family columns: best modeled (level-3) Gflop/s per CG among
  // each mapping family's executable plans, exposing the filter-axis
  // crossover (the filter-grained GEMM overtakes the incumbents as K
  // grows; 0 = that family cannot map the shape).
  TextTable table;
  table.set_header({"#", "filter", "Ni", "No", "plan", "img", "batch",
                    "fgrain", "pgrain", "swDNN Gflops", "cuDNN Gflops",
                    "speedup"});
  double lo = 1e30, hi = 0, max_sp = 0;
  int index = 0;
  for (const auto& shape : swdnn::bench::fig9_configs()) {
    ++index;
    const auto choice = sw.plan_for(shape);
    const auto fam = swdnn::bench::plan_family_bests(sw, shape);
    const double g = sw.cycle_accounted_gflops_chip(shape, choice.plan);
    const double cud = k40.conv_gflops(shape);
    lo = std::min(lo, g);
    hi = std::max(hi, g);
    max_sp = std::max(max_sp, g / cud);
    table.add_row({std::to_string(index),
                   std::to_string(shape.kr) + "x" + std::to_string(shape.kc),
                   std::to_string(shape.ni), std::to_string(shape.no),
                   choice.plan.to_string(), fmt_double(fam.img, 0),
                   fmt_double(fam.batch, 0), fmt_double(fam.fgrain, 0),
                   fmt_double(fam.pgrain, 0), fmt_double(g, 0),
                   fmt_double(cud, 0), fmt_speedup(g / cud)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("--- Summary ---\n");
  std::printf("swDNN spread over filter sizes : %.0f - %.0f Gflops "
              "(max/min = %.2f; the paper's series is likewise flat)\n",
              lo, hi, hi / lo);
  std::printf("largest speedup                : %.2fx (paper: 9.75x at "
              "large filters)\n",
              max_sp);
  return 0;
}
