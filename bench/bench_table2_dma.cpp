// Reproduces paper Table II: measured DMA bandwidths (GB/s) on one core
// group as a function of the per-CPE contiguous block size.
//
// The micro-benchmark drives the simulated DMA engine exactly the way
// the paper's did the silicon: for each block size, every CPE of an 8x8
// mesh streams a fixed volume in blocks of that size, and the effective
// bandwidth is volume / engine-occupancy time. Because the engine's
// cost curve is built from the published table, the "simulated" columns
// must land on the published numbers — this bench is the regression
// harness for that contract, and also reports the misaligned-block
// penalty the paper only describes qualitatively.

#include <cstdio>
#include <vector>

#include "src/perf/dma_table.h"
#include "src/sim/executor.h"
#include "src/util/table.h"

namespace {

using swdnn::perf::DmaDirection;

/// Streams `total_bytes` through the engine in `block_bytes` blocks on
/// every CPE and returns the effective bandwidth in GB/s.
double measure(std::int64_t block_bytes, DmaDirection dir, bool aligned) {
  const auto& spec = swdnn::arch::default_spec();
  swdnn::sim::MeshExecutor exec(spec);
  const std::int64_t block_elems = block_bytes / 8;
  const std::int64_t blocks_per_cpe = 64;
  std::vector<double> global(
      static_cast<std::size_t>(block_elems * blocks_per_cpe * 64));
  swdnn::sim::LaunchStats stats = exec.run([&](swdnn::sim::CpeContext& ctx) {
    auto ldm = ctx.ldm().alloc_doubles(static_cast<std::size_t>(block_elems));
    const std::size_t base = static_cast<std::size_t>(ctx.id()) *
                             static_cast<std::size_t>(block_elems) *
                             blocks_per_cpe;
    for (std::int64_t i = 0; i < blocks_per_cpe; ++i) {
      std::span<double> region{
          global.data() + base + static_cast<std::size_t>(i * block_elems),
          static_cast<std::size_t>(block_elems)};
      if (dir == DmaDirection::kGet) {
        ctx.dma_get(region, ldm);
      } else {
        ctx.dma_put(ldm, region);
      }
    }
  });
  (void)aligned;
  const double bytes = static_cast<double>(stats.dma.get_bytes +
                                           stats.dma.put_bytes);
  return bytes / stats.dma_seconds / 1e9;
}

}  // namespace

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;

  std::printf("=== Table II: Measured DMA Bandwidths (GB/s) on 1 CG ===\n");
  std::printf("(simulated engine vs the paper's published samples)\n\n");

  TextTable table;
  table.set_header({"Size(Byte)", "Get(paper)", "Get(sim)", "Put(paper)",
                    "Put(sim)"});
  for (const auto& sample : swdnn::perf::dma_table().samples()) {
    const double get_sim = measure(sample.block_bytes, DmaDirection::kGet,
                                   true);
    const double put_sim = measure(sample.block_bytes, DmaDirection::kPut,
                                   true);
    table.add_row({std::to_string(sample.block_bytes),
                   fmt_double(sample.get_gbs), fmt_double(get_sim),
                   fmt_double(sample.put_gbs), fmt_double(put_sim)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("--- Alignment penalty (paper: blocks should be 128 B "
              "aligned) ---\n");
  TextTable mis;
  mis.set_header({"Size(Byte)", "Get aligned", "Get misaligned", "penalty"});
  const auto& curve = swdnn::perf::dma_table();
  for (std::int64_t size : {96, 200, 520, 1000}) {
    const double a = curve.bandwidth_gbs(size, DmaDirection::kGet, true);
    const double m = curve.bandwidth_gbs(size, DmaDirection::kGet, false);
    mis.add_row({std::to_string(size), fmt_double(a), fmt_double(m),
                 fmt_double(100.0 * (1.0 - m / a), 1) + "%"});
  }
  std::printf("%s\n", mis.render().c_str());
  std::printf("Headline: DMA bandwidth ranges %.2f-%.2f GB/s; blocks >= "
              "256 B aligned to 128 B approach peak (paper Section "
              "III-D).\n",
              curve.bandwidth_gbs(32, DmaDirection::kPut),
              curve.peak_gbs(DmaDirection::kPut));
  return 0;
}
