// Reproduces paper Table III: performance-model evaluation on one core
// group. For each of the paper's four (plan, shape) rows we print the
// model's required bandwidth (Eq. 1/2), the effective DMA bandwidth,
// the closed-form estimate ("mdl") and the level-2 cycle-accounted
// proxy for the silicon measurement ("meas"), side by side with the
// published numbers.

#include <cstdio>
#include <string>
#include <vector>

#include "src/conv/swconv.h"
#include "src/util/stopwatch.h"
#include "src/util/table.h"
#include "workloads.h"

namespace {

struct Row {
  const char* plan;
  std::int64_t kc, bb, bco, ni, no;
  double rbw, mbw, mdl, meas;  // published values
};

constexpr Row kPaperRows[] = {
    {"img", 3, 32, 16, 128, 128, 29.0, 21.9, 368, 350},
    {"img", 3, 32, 8, 128, 256, 23.2, 18.2, 397, 375},
    {"batch", 3, 0, 8, 256, 256, 27.1, 21.2, 422, 410},
    {"batch", 3, 0, 8, 128, 384, 25.7, 21.2, 407, 392},
};

/// Per-shape planning cost with and without the shape-keyed plan cache,
/// written as machine-readable JSON for downstream tooling.
struct CacheSample {
  swdnn::conv::ConvShape shape;
  std::string plan_kind;
  double rank_ns = 0;    ///< one uncached PlanChooser::rank
  double lookup_ns = 0;  ///< one warm PlanCache lookup, averaged
};

void write_plan_cache_json(swdnn::conv::SwConvolution& sw,
                           const std::vector<swdnn::conv::ConvShape>& shapes,
                           const char* path) {
  using swdnn::util::Stopwatch;
  constexpr int kRankReps = 5;
  constexpr int kLookupReps = 20000;

  std::vector<CacheSample> samples;
  sw.clear_plan_cache();
  for (const auto& shape : shapes) {
    CacheSample s;
    s.shape = shape;
    // Uncached: the full candidate walk + model scoring, every call.
    Stopwatch rank_timer;
    for (int i = 0; i < kRankReps; ++i) (void)sw.chooser().rank(shape);
    s.rank_ns = rank_timer.elapsed_seconds() * 1e9 / kRankReps;
    // Cached: one miss to build the entry, then warm lookups.
    const auto entry = sw.ranked_plans(shape).entry;
    s.plan_kind = entry->has_executable()
                      ? swdnn::perf::plan_kind_name(
                            entry->best_executable().plan.kind)
                      : "host-gemm";
    Stopwatch lookup_timer;
    for (int i = 0; i < kLookupReps; ++i) (void)sw.ranked_plans(shape);
    s.lookup_ns = lookup_timer.elapsed_seconds() * 1e9 / kLookupReps;
    samples.push_back(s);
  }

  const auto stats = sw.plan_cache_stats();
  const double hit_rate =
      stats.hits + stats.misses
          ? static_cast<double>(stats.hits) /
                static_cast<double>(stats.hits + stats.misses)
          : 0.0;

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"plan_cache\",\n");
  std::fprintf(f, "  \"cache_hits\": %llu,\n",
               static_cast<unsigned long long>(stats.hits));
  std::fprintf(f, "  \"cache_misses\": %llu,\n",
               static_cast<unsigned long long>(stats.misses));
  std::fprintf(f, "  \"cache_hit_rate\": %.6f,\n", hit_rate);
  std::fprintf(f, "  \"shapes\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const CacheSample& s = samples[i];
    std::fprintf(
        f,
        "    {\"shape\": \"%s\", \"chosen_plan\": \"%s\", "
        "\"rank_ns_per_call\": %.1f, \"cached_lookup_ns_per_call\": %.1f, "
        "\"speedup\": %.1f}%s\n",
        s.shape.to_string().c_str(), s.plan_kind.c_str(), s.rank_ns,
        s.lookup_ns, s.lookup_ns > 0 ? s.rank_ns / s.lookup_ns : 0.0,
        i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s (hit rate %.4f over %llu lookups)\n", path, hit_rate,
              static_cast<unsigned long long>(stats.hits + stats.misses));
}

}  // namespace

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;

  swdnn::conv::SwConvolution sw;
  const auto& model = sw.chooser().model();

  std::printf("=== Table III: performance model evaluation (1 CG) ===\n");
  std::printf("Columns: ours | (paper). RBW from Eq. (1)/(2); mdl = "
              "closed-form model; meas = level-2 cycle-accounted proxy "
              "for the silicon measurement.\n\n");

  TextTable table;
  table.set_header({"Plan", "Kc", "bB", "bCo", "Ni", "No", "RBW", "MBW",
                    "mdl", "meas"});
  for (const Row& row : kPaperRows) {
    const auto shape = swdnn::bench::paper_shape(row.ni, row.no);
    swdnn::perf::ConvPlan plan;
    if (std::string(row.plan) == "img") {
      plan.kind = swdnn::perf::PlanKind::kImageSizeAware;
      plan.block_b = row.bb;
      plan.block_co = row.bco;
    } else {
      plan.kind = swdnn::perf::PlanKind::kBatchSizeAware;
      plan.block_co = row.bco;
    }
    const auto e = model.estimate(shape, plan);
    const double meas = sw.cycle_accounted_gflops_per_cg(shape, plan);
    auto cell = [](double ours, double paper, int digits) {
      return swdnn::util::fmt_double(ours, digits) + " (" +
             swdnn::util::fmt_double(paper, digits) + ")";
    };
    table.add_row({row.plan, std::to_string(row.kc),
                   row.bb ? std::to_string(row.bb) : "-",
                   std::to_string(row.bco), std::to_string(row.ni),
                   std::to_string(row.no), cell(e.rbw_mem_gbs, row.rbw, 1),
                   cell(e.mbw_mem_gbs, row.mbw, 1),
                   cell(e.gflops_per_cg, row.mdl, 0),
                   cell(meas, row.meas, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("--- Notes ---\n");
  std::printf("* RBW reproduces the published equation values exactly.\n");
  std::printf("* meas < mdl on every row, as in the paper "
              "(their ratios: 0.95/0.94/0.97/0.96).\n");
  std::printf("* Row 2 is the known deviation: the paper measured "
              "MBW = 18.2 GB/s in-kernel where our Table II-derived "
              "model cannot go below its 22 GB/s cap "
              "(see EXPERIMENTS.md).\n");

  // Planning-cost companion: how much the shape-keyed plan cache saves
  // per dispatch on the Table III shapes.
  std::vector<swdnn::conv::ConvShape> shapes;
  for (const Row& row : kPaperRows) {
    const auto shape = swdnn::bench::paper_shape(row.ni, row.no);
    bool seen = false;
    for (const auto& s : shapes) seen |= (s == shape);
    if (!seen) shapes.push_back(shape);
  }
  write_plan_cache_json(sw, shapes, "BENCH_plan_cache.json");
  return 0;
}
