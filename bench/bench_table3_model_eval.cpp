// Reproduces paper Table III: performance-model evaluation on one core
// group. For each of the paper's four (plan, shape) rows we print the
// model's required bandwidth (Eq. 1/2), the effective DMA bandwidth,
// the closed-form estimate ("mdl") and the level-2 cycle-accounted
// proxy for the silicon measurement ("meas"), side by side with the
// published numbers.

#include <cstdio>
#include <string>

#include "src/conv/swconv.h"
#include "src/util/table.h"
#include "workloads.h"

namespace {

struct Row {
  const char* plan;
  std::int64_t kc, bb, bco, ni, no;
  double rbw, mbw, mdl, meas;  // published values
};

constexpr Row kPaperRows[] = {
    {"img", 3, 32, 16, 128, 128, 29.0, 21.9, 368, 350},
    {"img", 3, 32, 8, 128, 256, 23.2, 18.2, 397, 375},
    {"batch", 3, 0, 8, 256, 256, 27.1, 21.2, 422, 410},
    {"batch", 3, 0, 8, 128, 384, 25.7, 21.2, 407, 392},
};

}  // namespace

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;

  swdnn::conv::SwConvolution sw;
  const auto& model = sw.chooser().model();

  std::printf("=== Table III: performance model evaluation (1 CG) ===\n");
  std::printf("Columns: ours | (paper). RBW from Eq. (1)/(2); mdl = "
              "closed-form model; meas = level-2 cycle-accounted proxy "
              "for the silicon measurement.\n\n");

  TextTable table;
  table.set_header({"Plan", "Kc", "bB", "bCo", "Ni", "No", "RBW", "MBW",
                    "mdl", "meas"});
  for (const Row& row : kPaperRows) {
    const auto shape = swdnn::bench::paper_shape(row.ni, row.no);
    swdnn::perf::ConvPlan plan;
    if (std::string(row.plan) == "img") {
      plan.kind = swdnn::perf::PlanKind::kImageSizeAware;
      plan.block_b = row.bb;
      plan.block_co = row.bco;
    } else {
      plan.kind = swdnn::perf::PlanKind::kBatchSizeAware;
      plan.block_co = row.bco;
    }
    const auto e = model.estimate(shape, plan);
    const double meas = sw.cycle_accounted_gflops_per_cg(shape, plan);
    auto cell = [](double ours, double paper, int digits) {
      return swdnn::util::fmt_double(ours, digits) + " (" +
             swdnn::util::fmt_double(paper, digits) + ")";
    };
    table.add_row({row.plan, std::to_string(row.kc),
                   row.bb ? std::to_string(row.bb) : "-",
                   std::to_string(row.bco), std::to_string(row.ni),
                   std::to_string(row.no), cell(e.rbw_mem_gbs, row.rbw, 1),
                   cell(e.mbw_mem_gbs, row.mbw, 1),
                   cell(e.gflops_per_cg, row.mdl, 0),
                   cell(meas, row.meas, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("--- Notes ---\n");
  std::printf("* RBW reproduces the published equation values exactly.\n");
  std::printf("* meas < mdl on every row, as in the paper "
              "(their ratios: 0.95/0.94/0.97/0.96).\n");
  std::printf("* Row 2 is the known deviation: the paper measured "
              "MBW = 18.2 GB/s in-kernel where our Table II-derived "
              "model cannot go below its 22 GB/s cap "
              "(see EXPERIMENTS.md).\n");
  return 0;
}
