// Reproduces paper Fig. 7: double-precision convolution throughput for
// the 101 (Ni, No) configurations of the Fig. 8 scripts, swDNN (on the
// simulated SW26010, level-2 cycle accounting) against the modeled
// cuDNNv5-on-K40m baseline. B = 128, 64x64 output images, 3x3 filters.
//
// Paper headline to reproduce in shape: swDNN mostly above 1.6 Tflops
// and stable; cuDNN jagged; speedups 1.91x - 9.75x.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/conv/swconv.h"
#include "src/perf/k40m.h"
#include "src/util/table.h"
#include "workloads.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  using swdnn::util::fmt_speedup;

  swdnn::conv::SwConvolution sw;
  swdnn::perf::K40mCudnnModel k40;

  std::printf("=== Fig. 7: conv performance, 101 (Ni,No) configs "
              "(B=128, out 64x64, filter 3x3) ===\n");
  std::printf("swDNN: level-2 cycle-accounted throughput on the simulated "
              "chip (4 CGs).\ncuDNN: modeled cuDNNv5 on K40m "
              "(perf/k40m.cc envelope).\n\n");

  // The per-family columns are the best modeled (level-3) Gflop/s per
  // CG among each mapping family's executable plans: they show where
  // along the channel axis the chooser's winner crosses from one
  // family to another (0 = that family cannot map the shape).
  TextTable table;
  table.set_header({"#", "Ni", "No", "plan", "img", "batch", "fgrain",
                    "pgrain", "swDNN Gflops", "cuDNN Gflops", "speedup"});
  double lo_sp = 1e30, hi_sp = 0;
  std::vector<double> ours, theirs;
  int index = 0;
  for (const auto& shape : swdnn::bench::fig7_configs()) {
    ++index;
    const auto choice = sw.plan_for(shape);
    const auto fam = swdnn::bench::plan_family_bests(sw, shape);
    const double g = sw.cycle_accounted_gflops_chip(shape, choice.plan);
    const double cud = k40.conv_gflops(shape);
    const double sp = g / cud;
    lo_sp = std::min(lo_sp, sp);
    hi_sp = std::max(hi_sp, sp);
    ours.push_back(g);
    theirs.push_back(cud);
    table.add_row({std::to_string(index), std::to_string(shape.ni),
                   std::to_string(shape.no), choice.plan.to_string(),
                   fmt_double(fam.img, 0), fmt_double(fam.batch, 0),
                   fmt_double(fam.fgrain, 0), fmt_double(fam.pgrain, 0),
                   fmt_double(g, 0), fmt_double(cud, 0), fmt_speedup(sp)});
  }
  std::printf("%s\n", table.render().c_str());

  auto stats = [](const std::vector<double>& v) {
    double mean = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0;
    for (double x : v) var += (x - mean) * (x - mean);
    return std::pair{mean, std::sqrt(var / static_cast<double>(v.size()))};
  };
  const auto [mean_sw, sd_sw] = stats(ours);
  const auto [mean_cu, sd_cu] = stats(theirs);
  int above16 = 0;
  for (double g : ours) {
    if (g > 1600.0) ++above16;
  }
  // The paper's stability claim is about well-provisioned layers; the
  // small-channel tail (No < 128, where Eq. 1/2 are intrinsically
  // bandwidth-starved) is reported separately.
  std::vector<double> ours_main, theirs_main;
  std::size_t idx2 = 0;
  for (const auto& shape : swdnn::bench::fig7_configs()) {
    if (shape.no >= 128 && shape.ni >= 128) {
      ours_main.push_back(ours[idx2]);
      theirs_main.push_back(theirs[idx2]);
    }
    ++idx2;
  }
  const auto [mean_swm, sd_swm] = stats(ours_main);
  const auto [mean_cum, sd_cum] = stats(theirs_main);

  std::printf("--- Summary (paper values in parentheses) ---\n");
  std::printf("speedup range        : %.2fx - %.2fx   (1.91x - 9.75x)\n",
              lo_sp, hi_sp);
  std::printf("swDNN mean +- sd     : %.0f +- %.0f Gflops; CV %.2f over "
              "all configs\n",
              mean_sw, sd_sw, sd_sw / mean_sw);
  std::printf("cuDNN mean +- sd     : %.0f +- %.0f Gflops; CV %.2f\n",
              mean_cu, sd_cu, sd_cu / mean_cu);
  std::printf("Ni,No >= 128 band    : swDNN CV %.2f vs cuDNN CV %.2f "
              "(the paper's stability claim holds on the "
              "well-provisioned band; the small-channel tail is "
              "bandwidth-starved by Eq. 1/2)\n",
              sd_swm / mean_swm, sd_cum / mean_cum);
  std::printf("configs > 1.6 Tflops : %d / %zu   (paper: 'most cases')\n",
              above16, ours.size());
  std::printf("best chip efficiency : %.1f%% of %.1f Gflops peak "
              "(paper: 54%%)\n",
              100.0 * *std::max_element(ours.begin(), ours.end()) /
                  sw.spec().peak_gflops_per_chip(),
              sw.spec().peak_gflops_per_chip());
  return 0;
}
