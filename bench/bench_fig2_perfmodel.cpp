// Reproduces paper Fig. 2: the three-level performance model of one
// core group — the direct-memory-access column against the
// REG-LDM-MEM column, evaluated for the reference configuration.

#include <cstdio>

#include "src/perf/chooser.h"
#include "src/util/table.h"
#include "workloads.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  const auto& spec = swdnn::arch::default_spec();
  swdnn::perf::PerformanceModel model(spec);

  std::printf("=== Fig. 2: performance model of the CNN kernel on one CG "
              "===\n\n");
  std::printf("Peak performance per CG      : %.1f Gflops\n",
              spec.peak_gflops_per_cg());
  std::printf("LDM->REG bandwidth           : %.1f GB/s\n",
              spec.ldm_reg_bandwidth_gbs);
  std::printf("gload (direct) bandwidth     : %.1f GB/s\n",
              spec.gload_bandwidth_gbs);
  std::printf("RBW of direct memory access  : %.2f GB/s\n\n",
              spec.direct_required_bandwidth_gbs());

  std::printf("--- Direct Memory Access column ---\n");
  const double direct = model.direct_gload_gflops_per_cg();
  std::printf("estimate = 742.4 * min(1, 8/139.2)^2 = %.2f Gflops "
              "(%.2f%% of peak; paper: 0.32%%)\n\n",
              direct, 100.0 * direct / spec.peak_gflops_per_cg());

  std::printf("--- REG-LDM-MEM column, per configuration ---\n");
  TextTable table;
  table.set_header({"config", "plan", "RBW(MEM)", "MBW(MEM)", "RBW(LDM)",
                    "EE", "est Gflops/CG", "%peak"});
  swdnn::perf::PlanChooser chooser(spec);
  for (auto [ni, no] :
       {std::pair{64L, 64L}, {128L, 128L}, {128L, 256L}, {256L, 256L},
        {384L, 384L}}) {
    const auto shape = swdnn::bench::paper_shape(ni, no);
    const auto choice = chooser.choose(shape);
    const auto& e = choice.estimate;
    table.add_row({std::to_string(ni) + "x" + std::to_string(no),
                   choice.plan.to_string(), fmt_double(e.rbw_mem_gbs, 1),
                   fmt_double(e.mbw_mem_gbs, 1), fmt_double(e.rbw_ldm_gbs, 1),
                   fmt_double(e.ee, 3), fmt_double(e.gflops_per_cg, 0),
                   fmt_double(100.0 * e.gflops_per_cg /
                                  spec.peak_gflops_per_cg(),
                              1) +
                       "%"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The REG-LDM-MEM path is 2-3 orders of magnitude above the "
              "direct path — the paper's motivation for the explicit\n"
              "LDM + register-communication design.\n");
  return 0;
}
