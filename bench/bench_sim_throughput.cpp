// Host wall-clock throughput of the functional simulator: the
// optimized hot path (persistent CPE worker pool + bulk span bus
// transfers + register-blocked local GEMM) against the pre-optimization
// baseline (thread spawn per launch + per-Vec4 bus loop + naive
// microkernel), on the same 64x64x256 mesh GEMM on the full 8x8 mesh.
// Both configurations produce bitwise-identical outputs and identical
// LaunchStats (sim_bulk_regcomm_test holds that invariant); only the
// host time differs. Also reports an eager-vs-compiled model step on
// the mesh backend, where every launch now reuses one pool. Results
// land in BENCH_sim_throughput.json.

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/conv/mesh_gemm_driver.h"
#include "src/conv/regcomm_gemm.h"
#include "src/dnn/fully_connected.h"
#include "src/sim/executor.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"

namespace {

using namespace swdnn;

constexpr std::int64_t kM = 64, kK = 256, kN = 64;
constexpr int kWarmup = 2;
constexpr int kSteps = 10;

struct ModeResult {
  double seconds_per_launch = 0;
  double launches_per_second = 0;
  double sim_gflops_per_host_second = 0;  ///< simulated flops / host time
  sim::LaunchStats stats;
  std::vector<double> out;
};

ModeResult run_mode(bool use_pool, conv::BusPathMode mode) {
  util::Rng rng(42);
  std::vector<double> a(static_cast<std::size_t>(kK * kM));
  std::vector<double> b(static_cast<std::size_t>(kK * kN));
  rng.fill_normal(a, 0.0, 1.0);
  rng.fill_normal(b, 0.0, 1.0);

  ModeResult r;
  r.out.resize(static_cast<std::size_t>(kM * kN));
  sim::MeshExecutor exec;  // full 8x8 mesh
  exec.set_use_worker_pool(use_pool);
  conv::MeshGemmOptions options;
  options.bus_mode = mode;

  for (int i = 0; i < kWarmup; ++i) {
    r.stats = conv::mesh_gemm(exec, a, b, r.out, kM, kK, kN, options);
  }
  util::Stopwatch watch;
  for (int i = 0; i < kSteps; ++i) {
    r.stats = conv::mesh_gemm(exec, a, b, r.out, kM, kK, kN, options);
  }
  const double elapsed = watch.elapsed_seconds();
  r.seconds_per_launch = elapsed / kSteps;
  r.launches_per_second =
      r.seconds_per_launch > 0 ? 1.0 / r.seconds_per_launch : 0.0;
  r.sim_gflops_per_host_second =
      elapsed > 0 ? static_cast<double>(r.stats.total_flops) * kSteps /
                        elapsed / 1e9
                  : 0.0;
  return r;
}

struct FcResult {
  double seconds_per_step = 0;
};

/// A small training-shaped workload on the mesh backend: repeated FC
/// forwards, each one a full mesh-GEMM launch. With the persistent
/// executor inside the layer, every step after the first reuses the
/// worker pool.
FcResult run_fc_steps(int steps) {
  util::Rng rng(9);
  dnn::FullyConnected fc(128, 64, rng, dnn::FcBackend::kSimulatedMesh);
  tensor::Tensor input({128, 8});
  rng.fill_uniform(input.data(), -1, 1);
  fc.forward(input);  // warm-up: pool creation + plan
  util::Stopwatch watch;
  for (int s = 0; s < steps; ++s) fc.forward(input);
  FcResult r;
  r.seconds_per_step = watch.elapsed_seconds() / steps;
  return r;
}

}  // namespace

int main() {
  // Baseline = the seed implementation's host strategy; optimized = this
  // PR's defaults.
  const ModeResult baseline =
      run_mode(/*use_pool=*/false, conv::BusPathMode::kVec4Reference);
  const ModeResult optimized =
      run_mode(/*use_pool=*/true, conv::BusPathMode::kBulkSpan);

  const bool outputs_identical =
      baseline.out.size() == optimized.out.size() &&
      std::memcmp(baseline.out.data(), optimized.out.data(),
                  baseline.out.size() * sizeof(double)) == 0;
  const bool stats_identical =
      baseline.stats.max_compute_cycles == optimized.stats.max_compute_cycles &&
      baseline.stats.total_flops == optimized.stats.total_flops &&
      baseline.stats.regcomm_messages == optimized.stats.regcomm_messages &&
      baseline.stats.dma.get_bytes == optimized.stats.dma.get_bytes &&
      baseline.stats.dma.put_bytes == optimized.stats.dma.put_bytes;
  const double speedup = optimized.seconds_per_launch > 0
                             ? baseline.seconds_per_launch /
                                   optimized.seconds_per_launch
                             : 0.0;

  const FcResult fc = run_fc_steps(10);

  std::printf("=== Simulator host throughput: 64x64x256 mesh GEMM, "
              "8x8 mesh, %d timed launches ===\n", kSteps);
  std::printf("baseline  (spawn + Vec4 loop + naive kernel): "
              "%9.3f ms/launch  %7.2f launches/s  %8.3f sim-Gflop/s per "
              "host-s\n",
              baseline.seconds_per_launch * 1e3,
              baseline.launches_per_second,
              baseline.sim_gflops_per_host_second);
  std::printf("optimized (pool + bulk spans + blocked kernel): "
              "%8.3f ms/launch  %7.2f launches/s  %8.3f sim-Gflop/s per "
              "host-s\n",
              optimized.seconds_per_launch * 1e3,
              optimized.launches_per_second,
              optimized.sim_gflops_per_host_second);
  std::printf("wall-clock speedup: %.2fx   outputs bitwise identical: %s   "
              "stats identical: %s\n",
              speedup, outputs_identical ? "yes" : "NO",
              stats_identical ? "yes" : "NO");
  std::printf("mesh-backend FC step (pooled executor): %.3f ms/step\n",
              fc.seconds_per_step * 1e3);

  const char* path = "BENCH_sim_throughput.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"sim_throughput\",\n");
  std::fprintf(f, "  \"workload\": \"mesh_gemm m=%lld k=%lld n=%lld on 8x8 "
               "mesh\",\n",
               static_cast<long long>(kM), static_cast<long long>(kK),
               static_cast<long long>(kN));
  std::fprintf(f, "  \"timed_launches\": %d,\n", kSteps);
  std::fprintf(f, "  \"baseline_seconds_per_launch\": %.6f,\n",
               baseline.seconds_per_launch);
  std::fprintf(f, "  \"baseline_launches_per_second\": %.3f,\n",
               baseline.launches_per_second);
  std::fprintf(f, "  \"baseline_sim_gflops_per_host_second\": %.3f,\n",
               baseline.sim_gflops_per_host_second);
  std::fprintf(f, "  \"optimized_seconds_per_launch\": %.6f,\n",
               optimized.seconds_per_launch);
  std::fprintf(f, "  \"optimized_launches_per_second\": %.3f,\n",
               optimized.launches_per_second);
  std::fprintf(f, "  \"optimized_sim_gflops_per_host_second\": %.3f,\n",
               optimized.sim_gflops_per_host_second);
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"outputs_bitwise_identical\": %s,\n",
               outputs_identical ? "true" : "false");
  std::fprintf(f, "  \"stats_identical\": %s,\n",
               stats_identical ? "true" : "false");
  std::fprintf(f, "  \"fc_mesh_step_seconds\": %.6f\n", fc.seconds_per_step);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  // The equivalence claim is part of the bench contract: fail loudly if
  // the fast path ever drifts from the oracle.
  return (outputs_identical && stats_identical) ? 0 : 1;
}
