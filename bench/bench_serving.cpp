// Serving latency/throughput across batch-budget settings, plus an
// overload scenario exercising admission control. Results land in
// BENCH_serving.json.
//
// Steady scenarios: paced single-sample submissions from 4 tenants
// against three batcher budgets — the latency/throughput tradeoff knob.
// Every steady request must complete (no rejects, sheds, or deadline
// misses); the bench exits nonzero otherwise.
//
// Overload scenario: a burst far beyond a deliberately tiny queue with
// a tight deadline. Here the REJECTED / SHED / DEADLINE counters must
// all be nonzero — overload answered with statuses is the contract —
// and the bench exits nonzero if any stayed zero.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/serve/server.h"
#include "src/util/rng.h"

namespace {

using namespace std::chrono_literals;
using swdnn::serve::Clock;

const std::vector<std::int64_t> kSampleDims = {8, 8, 3};

std::unique_ptr<swdnn::dnn::Network> make_model(std::int64_t batch) {
  using namespace swdnn;
  auto net = std::make_unique<dnn::Network>();
  util::Rng rng(777);
  conv::ConvShape c;
  c.batch = batch;
  c.ni = 3;
  c.no = 5;
  c.ri = 8;
  c.ci = 8;
  c.kr = 3;
  c.kc = 3;
  net->emplace<dnn::Convolution>(c, rng, dnn::ConvBackend::kHostIm2col,
                                 /*with_bias=*/true);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(6 * 6 * 5, 10, rng);
  net->emplace<dnn::Softmax>();
  return net;
}

swdnn::tensor::Tensor make_sample(std::uint64_t seed) {
  swdnn::tensor::Tensor t(kSampleDims);
  swdnn::util::Rng rng(seed);
  rng.fill_uniform(t.data(), -1.0, 1.0);
  return t;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

struct SteadyResult {
  long long budget_us = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double throughput_rps = 0;
  std::uint64_t completed = 0;
  std::uint64_t not_completed = 0;  // rejected + shed + deadline missed
  double batch_occupancy = 0;
};

/// Paced load: one submission every `pace`, round-robin over 4 tenants.
SteadyResult run_steady(std::chrono::microseconds budget_us) {
  using namespace swdnn::serve;
  ServerConfig config;
  config.max_batch = 4;
  config.batch_budget = budget_us;
  config.default_deadline = 5s;
  config.num_replicas = 2;
  config.max_queue = 256;
  config.max_queue_per_tenant = 128;
  InferenceServer server(make_model, kSampleDims, config);

  constexpr int kRequests = 200;
  constexpr auto kPace = 100us;
  std::vector<std::future<ServeResult>> futures;
  futures.reserve(kRequests);
  const Clock::time_point begin = Clock::now();
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(
        server.submit(i % 4, make_sample(static_cast<std::uint64_t>(i))));
    std::this_thread::sleep_for(kPace);
  }
  std::vector<double> latencies;
  latencies.reserve(kRequests);
  for (auto& future : futures) {
    const ServeResult result = future.get();
    if (result.status == ServeStatus::kOk) latencies.push_back(result.latency_ms);
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - begin).count();
  const ServingCounters counters = server.counters();

  SteadyResult r;
  r.budget_us = budget_us.count();
  r.p50_ms = percentile(latencies, 0.50);
  r.p99_ms = percentile(latencies, 0.99);
  r.throughput_rps = static_cast<double>(counters.completed) / elapsed;
  r.completed = counters.completed;
  r.not_completed =
      counters.rejected() + counters.shed + counters.deadline_missed;
  r.batch_occupancy =
      counters.batches > 0 ? static_cast<double>(counters.batched_requests) /
                                 static_cast<double>(counters.batches)
                           : 0.0;
  return r;
}

struct OverloadResult {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t deadline_missed = 0;
};

/// Burst far beyond a tiny queue: tenant 0 floods first (becoming the
/// shed target), then the others pile on, all against a deadline
/// shorter than the queue can drain.
OverloadResult run_overload() {
  using namespace swdnn::serve;
  ServerConfig config;
  config.max_batch = 4;
  config.batch_budget = 500us;
  config.default_deadline = 2ms;
  config.num_replicas = 1;
  config.max_queue = 8;
  config.max_queue_per_tenant = 8;
  InferenceServer server(make_model, kSampleDims, config);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 60; ++i) {
    futures.push_back(server.submit(0, make_sample(1000 + i)));
  }
  // The tail group carries a deadline tighter than the time the full
  // queue takes to drain: whatever survives the shed/reject gauntlet
  // sits behind a queue's worth of work and blows its SLA.
  for (int i = 0; i < 60; ++i) {
    futures.push_back(server.submit(1 + i % 3, make_sample(2000 + i),
                                    Clock::now() + 200us));
  }
  for (auto& future : futures) future.get();
  server.drain();
  const ServingCounters counters = server.counters();

  OverloadResult r;
  r.submitted = counters.submitted;
  r.completed = counters.completed;
  r.rejected = counters.rejected();
  r.shed = counters.shed;
  r.deadline_missed = counters.deadline_missed;
  return r;
}

}  // namespace

int main() {
  const std::vector<std::chrono::microseconds> budgets = {200us, 1000us,
                                                          5000us};
  std::vector<SteadyResult> steady;
  std::printf("=== Serving bench: batch budget sweep (paced load) ===\n");
  std::printf("%10s %10s %10s %12s %10s %10s\n", "budget_us", "p50_ms",
              "p99_ms", "rps", "completed", "occupancy");
  bool violation = false;
  for (const auto budget : budgets) {
    const SteadyResult r = run_steady(budget);
    steady.push_back(r);
    std::printf("%10lld %10.3f %10.3f %12.0f %10llu %10.2f\n", r.budget_us,
                r.p50_ms, r.p99_ms, r.throughput_rps,
                static_cast<unsigned long long>(r.completed),
                r.batch_occupancy);
    if (r.not_completed != 0) {
      std::fprintf(stderr,
                   "VIOLATION: steady scenario (budget %lld us) dropped %llu "
                   "request(s)\n",
                   r.budget_us,
                   static_cast<unsigned long long>(r.not_completed));
      violation = true;
    }
  }

  const OverloadResult overload = run_overload();
  std::printf("=== Overload scenario (queue 8, deadline 2 ms, burst 120) ===\n");
  std::printf(
      "submitted %llu  completed %llu  rejected %llu  shed %llu  "
      "deadline_missed %llu\n",
      static_cast<unsigned long long>(overload.submitted),
      static_cast<unsigned long long>(overload.completed),
      static_cast<unsigned long long>(overload.rejected),
      static_cast<unsigned long long>(overload.shed),
      static_cast<unsigned long long>(overload.deadline_missed));
  if (overload.rejected == 0 || overload.shed == 0 ||
      overload.deadline_missed == 0) {
    std::fprintf(stderr,
                 "VIOLATION: overload scenario must exercise every "
                 "admission-control path (rejected/shed/deadline all > 0)\n");
    violation = true;
  }

  const char* path = "BENCH_serving.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"serving\",\n");
  std::fprintf(f, "  \"steady\": [\n");
  for (std::size_t i = 0; i < steady.size(); ++i) {
    const SteadyResult& r = steady[i];
    std::fprintf(f,
                 "    {\"budget_us\": %lld, \"p50_ms\": %.3f, \"p99_ms\": "
                 "%.3f, \"throughput_rps\": %.0f, \"completed\": %llu, "
                 "\"dropped\": %llu, \"batch_occupancy\": %.2f}%s\n",
                 r.budget_us, r.p50_ms, r.p99_ms, r.throughput_rps,
                 static_cast<unsigned long long>(r.completed),
                 static_cast<unsigned long long>(r.not_completed),
                 r.batch_occupancy, i + 1 < steady.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"overload\": {\"submitted\": %llu, \"completed\": %llu, "
               "\"rejected\": %llu, \"shed\": %llu, \"deadline_missed\": "
               "%llu}\n",
               static_cast<unsigned long long>(overload.submitted),
               static_cast<unsigned long long>(overload.completed),
               static_cast<unsigned long long>(overload.rejected),
               static_cast<unsigned long long>(overload.shed),
               static_cast<unsigned long long>(overload.deadline_missed));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
  return violation ? 1 : 0;
}
