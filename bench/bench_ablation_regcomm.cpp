// Ablation for Section V-A: the customized register communication
// scheme "reduces the memory bandwidth requirement for almost an order
// of magnitude".
//
// Two views: (a) model — the required MEM bandwidth and resulting
// throughput with the mesh data sharing on and off; (b) functional —
// run the mesh kernel on the simulator and report how many bytes
// actually travelled over the buses instead of the memory interface.

#include <cstdio>

#include "src/conv/reference.h"
#include "src/conv/swconv.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "workloads.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  namespace conv = swdnn::conv;

  std::printf("=== Ablation: register communication (paper Section V-A) "
              "===\n\n");

  // (a) Model view across the paper's channel range.
  swdnn::perf::PerformanceModel model;
  TextTable table;
  table.set_header({"config", "plan", "RBW with", "RBW without", "ratio",
                    "Gflops/CG with", "Gflops/CG without"});
  swdnn::perf::PlanChooser chooser;
  for (auto ch : {64L, 128L, 256L, 384L}) {
    const auto shape = swdnn::bench::paper_shape(ch, ch);
    auto plan = chooser.choose(shape).plan;
    auto without = plan;
    without.use_register_comm = false;
    const auto e_with = model.estimate(shape, plan);
    const auto e_without = model.estimate(shape, without);
    table.add_row(
        {std::to_string(ch) + "x" + std::to_string(ch), plan.to_string(),
         fmt_double(e_with.rbw_mem_gbs, 1),
         fmt_double(e_without.rbw_mem_gbs, 1),
         fmt_double(e_without.rbw_mem_gbs / e_with.rbw_mem_gbs, 1) + "x",
         fmt_double(e_with.gflops_per_cg, 0),
         fmt_double(e_without.gflops_per_cg, 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("Without the mesh data sharing every CPE fetches all Ni "
              "input and No filter channels itself: RBW grows by the "
              "mesh dimension (8x) — 'almost an order of magnitude'.\n\n");

  // (b) Functional view: bus traffic vs memory traffic of a real run.
  swdnn::arch::Sw26010Spec spec = swdnn::arch::default_spec();
  spec.mesh_rows = spec.mesh_cols = 4;
  conv::SwConvolution sw(spec);
  const auto shape = conv::ConvShape::from_output(8, 8, 8, 4, 4, 3, 3);
  swdnn::util::Rng rng(7);
  auto input = conv::make_input(shape);
  auto filter = conv::make_filter(shape);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);
  auto output = conv::make_output(shape);
  const auto result = sw.forward(input, filter, output, shape);
  const double mem_bytes = static_cast<double>(
      result.stats.dma.get_bytes + result.stats.dma.put_bytes);
  const double bus_bytes = static_cast<double>(result.stats.regcomm_bytes());
  std::printf("functional run (%s, 4x4 mesh):\n", shape.to_string().c_str());
  std::printf("  DMA traffic      : %.0f bytes\n", mem_bytes);
  std::printf("  bus traffic      : %.0f bytes "
              "(operands that never touched memory again)\n",
              bus_bytes);
  std::printf("  bus/DMA ratio    : %.1fx — the data sharing the buses "
              "absorb would otherwise be repeated DMA.\n",
              bus_bytes / mem_bytes);
  return 0;
}
