// Host parallel runtime throughput: the packed row-panel-parallel GEMM
// against the serial blocked kernel, and an end-to-end train step
// (conv + relu + pooling + FC through the im2col host path) serial vs
// parallel. Thread counts are swapped through runtime::set_host_threads
// on one process-wide pool, so both configurations run the exact same
// code with only the lane count changed — and the outputs must stay
// bitwise identical, which this bench verifies and gates its exit code
// on (speedup itself is machine-dependent and reported, not enforced).
// Results land in BENCH_host_parallel.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "src/conv/gemm.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/trainer.h"
#include "src/runtime/task_pool.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"

namespace {

using namespace swdnn;

constexpr std::int64_t kM = 192, kK = 192, kN = 192;
constexpr int kGemmReps = 8;
constexpr int kTrainSteps = 4;

struct GemmResult {
  double seconds_per_call = 0;
  double gflops = 0;
  std::vector<double> out;
};

GemmResult run_gemm(int threads, bool packed_parallel) {
  util::Rng rng(1234);
  std::vector<double> a(static_cast<std::size_t>(kM * kK));
  std::vector<double> b(static_cast<std::size_t>(kK * kN));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);

  runtime::set_host_threads(threads);
  GemmResult r;
  r.out.assign(static_cast<std::size_t>(kM * kN), 0.0);
  // Warm-up (also spawns the pool lanes outside the timed region).
  if (packed_parallel) {
    conv::gemm_packed_parallel(kM, kN, kK, a, b, r.out);
  } else {
    conv::gemm_blocked(kM, kN, kK, a, b, r.out);
  }
  util::Stopwatch watch;
  for (int i = 0; i < kGemmReps; ++i) {
    std::fill(r.out.begin(), r.out.end(), 0.0);
    if (packed_parallel) {
      conv::gemm_packed_parallel(kM, kN, kK, a, b, r.out);
    } else {
      conv::gemm_blocked(kM, kN, kK, a, b, r.out);
    }
  }
  const double elapsed = watch.elapsed_seconds();
  r.seconds_per_call = elapsed / kGemmReps;
  r.gflops = r.seconds_per_call > 0
                 ? 2.0 * static_cast<double>(kM) * kN * kK /
                       r.seconds_per_call / 1e9
                 : 0.0;
  return r;
}

struct TrainResult {
  double seconds_per_step = 0;
  std::vector<double> params;
};

/// A small CNN trained through the host im2col path; returns the final
/// parameters as the run's bitwise signature.
TrainResult run_train(int threads) {
  runtime::set_host_threads(threads);
  util::Rng rng(991);
  dnn::Network net;
  net.emplace<dnn::Convolution>(
      conv::ConvShape::from_output(8, 1, 4, 10, 10, 3, 3), rng);
  net.emplace<dnn::Relu>();
  net.emplace<dnn::MaxPooling>(2);
  net.emplace<dnn::FullyConnected>(5 * 5 * 4, 4, rng);
  dnn::Sgd opt(0.1, 0.9);
  dnn::Trainer trainer(net, opt);
  dnn::SyntheticBars data(12, 4, 0.05, 321);

  trainer.train_step(data.sample(8));  // warm-up
  util::Stopwatch watch;
  for (int s = 0; s < kTrainSteps; ++s) trainer.train_step(data.sample(8));
  TrainResult r;
  r.seconds_per_step = watch.elapsed_seconds() / kTrainSteps;
  for (const auto& pg : net.params()) {
    const auto d = pg.param->data();
    r.params.insert(r.params.end(), d.begin(), d.end());
  }
  return r;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main() {
  const unsigned hw = std::thread::hardware_concurrency();
  // The environment's thread request, recorded (not obeyed — the bench
  // pins its own counts so serial vs parallel is always exercised) to
  // make the ROADMAP's "collected at N cores" caveat machine-checkable
  // from the JSON artifact alone. 0 = unset or unparseable.
  const char* env = std::getenv("SWDNN_HOST_THREADS");
  long env_threads = 0;
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && parsed >= 1 && parsed <= 1024) {
      env_threads = parsed;
    }
  }
  const int parallel_threads =
      hw >= 8 ? 8 : (hw > 1 ? static_cast<int>(hw) : 2);

  // GEMM: serial blocked oracle, then the packed kernel at 1 and at
  // `parallel_threads` lanes.
  const GemmResult serial_blocked = run_gemm(1, /*packed_parallel=*/false);
  const GemmResult packed_1t = run_gemm(1, /*packed_parallel=*/true);
  const GemmResult packed_nt =
      run_gemm(parallel_threads, /*packed_parallel=*/true);

  const bool gemm_identical = bitwise_equal(serial_blocked.out, packed_1t.out) &&
                              bitwise_equal(serial_blocked.out, packed_nt.out);
  const double gemm_speedup =
      packed_nt.seconds_per_call > 0
          ? serial_blocked.seconds_per_call / packed_nt.seconds_per_call
          : 0.0;

  // End-to-end train step, serial vs parallel.
  const TrainResult train_1t = run_train(1);
  const TrainResult train_nt = run_train(parallel_threads);
  const bool train_identical = bitwise_equal(train_1t.params, train_nt.params);
  const double train_speedup =
      train_nt.seconds_per_step > 0
          ? train_1t.seconds_per_step / train_nt.seconds_per_step
          : 0.0;

  runtime::set_host_threads(1);

  std::printf("=== Host parallel runtime: %lldx%lldx%lld GEMM + CNN train "
              "step, %d lanes (hw=%u) ===\n",
              static_cast<long long>(kM), static_cast<long long>(kN),
              static_cast<long long>(kK), parallel_threads, hw);
  std::printf("gemm_blocked serial:          %9.3f ms/call  %7.2f Gflop/s\n",
              serial_blocked.seconds_per_call * 1e3, serial_blocked.gflops);
  std::printf("gemm_packed_parallel 1 lane:  %9.3f ms/call  %7.2f Gflop/s\n",
              packed_1t.seconds_per_call * 1e3, packed_1t.gflops);
  std::printf("gemm_packed_parallel %d lanes: %8.3f ms/call  %7.2f Gflop/s\n",
              parallel_threads, packed_nt.seconds_per_call * 1e3,
              packed_nt.gflops);
  std::printf("gemm speedup vs serial blocked: %.2fx   bitwise identical: "
              "%s\n",
              gemm_speedup, gemm_identical ? "yes" : "NO");
  std::printf("train step serial:   %9.3f ms/step\n",
              train_1t.seconds_per_step * 1e3);
  std::printf("train step %d lanes: %9.3f ms/step   speedup: %.2fx   "
              "bitwise identical: %s\n",
              parallel_threads, train_nt.seconds_per_step * 1e3,
              train_speedup, train_identical ? "yes" : "NO");

  const char* path = "BENCH_host_parallel.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"host_parallel\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %u,\n", hw);
  std::fprintf(f, "  \"env_swdnn_host_threads\": %ld,\n", env_threads);
  std::fprintf(f, "  \"parallel_threads\": %d,\n", parallel_threads);
  std::fprintf(f, "  \"gemm_m\": %lld,\n  \"gemm_n\": %lld,\n"
               "  \"gemm_k\": %lld,\n",
               static_cast<long long>(kM), static_cast<long long>(kN),
               static_cast<long long>(kK));
  std::fprintf(f, "  \"gemm_serial_blocked_seconds\": %.6f,\n",
               serial_blocked.seconds_per_call);
  std::fprintf(f, "  \"gemm_packed_1t_seconds\": %.6f,\n",
               packed_1t.seconds_per_call);
  std::fprintf(f, "  \"gemm_packed_nt_seconds\": %.6f,\n",
               packed_nt.seconds_per_call);
  std::fprintf(f, "  \"gemm_speedup\": %.3f,\n", gemm_speedup);
  std::fprintf(f, "  \"gemm_bitwise_identical\": %s,\n",
               gemm_identical ? "true" : "false");
  std::fprintf(f, "  \"train_serial_seconds_per_step\": %.6f,\n",
               train_1t.seconds_per_step);
  std::fprintf(f, "  \"train_parallel_seconds_per_step\": %.6f,\n",
               train_nt.seconds_per_step);
  std::fprintf(f, "  \"train_speedup\": %.3f,\n", train_speedup);
  std::fprintf(f, "  \"train_bitwise_identical\": %s\n",
               train_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  // The determinism claim is the bench contract: any numeric drift
  // between serial and parallel execution fails the job.
  return (gemm_identical && train_identical) ? 0 : 1;
}
