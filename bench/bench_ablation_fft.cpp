// Ablation for the Section III-C method decision: spatial-domain vs
// frequency-domain convolution on SW26010.
//
// The paper rejects the FFT approach in two sentences; this bench
// quantifies the rejection with the library's own FFT implementation
// and bandwidth model: flop counts, required bandwidth, and the modeled
// end-to-end layer time of both methods across the filter-size range.

#include <algorithm>
#include <cstdio>

#include "src/conv/fftconv.h"
#include "src/conv/winograd.h"
#include "src/perf/chooser.h"
#include "src/util/table.h"
#include "workloads.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  namespace conv = swdnn::conv;

  const auto& spec = swdnn::arch::default_spec();
  swdnn::perf::PlanChooser chooser(spec);

  std::printf("=== Ablation: spatial vs frequency domain (paper "
              "Section III-C) ===\n\n");
  std::printf("FFT model: planes padded to the next power of two, rows "
              "FFT'd in LDM, one full-plane pass per dimension per "
              "direction; effective rate = peak * min(1, 22/RBW)^2 "
              "(the model's in-kernel bandwidth cap).\n\n");

  TextTable table;
  table.set_header({"filter", "spatial Gflop", "fft Gflop", "fft RBW GB/s",
                    "spatial ms", "fft ms", "spatial wins by"});
  for (std::int64_t k : {1, 3, 5, 7, 11, 15, 21}) {
    const auto shape = swdnn::bench::paper_shape(128, 128, k);
    const double fft_rbw = conv::fft_required_bandwidth_gbs(shape, spec);
    const double ratio = std::min(1.0, 22.0 / fft_rbw);
    const double fft_gflops = spec.peak_gflops_per_cg() * ratio * ratio;
    const double fft_ms =
        conv::fft_method_flops(shape) / (fft_gflops * 1e9) * 1e3;
    const auto choice = chooser.choose(shape);
    const double spatial_ms = static_cast<double>(shape.flops()) /
                              (choice.estimate.gflops_per_cg * 1e9) * 1e3;
    table.add_row({std::to_string(k) + "x" + std::to_string(k),
                   fmt_double(static_cast<double>(shape.flops()) / 1e9, 1),
                   fmt_double(conv::fft_method_flops(shape) / 1e9, 1),
                   fmt_double(fft_rbw, 0), fmt_double(spatial_ms, 1),
                   fmt_double(fft_ms, 1),
                   fmt_double(fft_ms / spatial_ms, 1) + "x"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("The FFT method can need FEWER flops (transforms amortize "
              "over B=128), but its bandwidth demand sits far above what "
              "the DMA interface delivers — on a machine with 36 GB/s "
              "per CG against 742.4 Gflops, arithmetic is cheap and "
              "bytes are not. For every filter size CNNs commonly use "
              "the spatial method wins by a wide margin; only at the "
              "extreme end of the Fig. 9 range (~21x21) does the FFT's "
              "flop advantage finally overcome its bandwidth starvation "
              "— and there the spatial kernels still deliver their flat "
              "~1.6 Tflops while an FFT library would additionally need "
              "the all-to-all transposes the paper cites against it.\n\n");

  // --- Winograd F(2x2, 3x3) — the other cited fast-conv family -------
  std::printf("=== Winograd F(2x2,3x3) on SW26010 (related-work "
              "analysis) ===\n\n");
  TextTable wino;
  wino.set_header({"Ni=No", "nominal multiply cut", "transform Gflop",
                   "effective speedup", "filter bytes"});
  for (std::int64_t ch : {16L, 64L, 128L, 256L, 384L}) {
    const auto shape = swdnn::bench::paper_shape(ch, ch, 3);
    const auto a = conv::winograd_analysis(shape);
    wino.add_row({std::to_string(ch),
                  fmt_double(a.multiply_reduction, 2) + "x",
                  fmt_double(a.transform_flops / 1e9, 1),
                  fmt_double(a.effective_speedup, 2) + "x",
                  fmt_double(a.filter_bytes_ratio, 2) + "x"});
  }
  std::printf("%s\n", wino.render().c_str());
  std::printf("Winograd's 2.25x multiply cut shrinks once the transform "
              "adds run on the same P0 pipeline (no FMA fusion for pure "
              "adds) and the transformed filters carry 16/9 the bytes "
              "into an already bandwidth-bound Eq. (1). At deep layers "
              "~2.2x survives on the compute side before the extra "
              "filter traffic erodes it; at shallow layers the "
              "transforms eat the margin. A worthwhile extension the "
              "paper leaves on the table (\"will expand ... at a later "
              "stage\").\n");
  return 0;
}
