// Reproduces the Section III-D multi-core-group scaling claim: output
// rows partitioned across the four CGs give near-linear scaling.
//
// Two views: (a) a functional run on reduced meshes where all four
// partitions execute and the result is checked against the reference,
// and (b) the level-2 model at paper scale, 1..4 CGs.

#include <cstdio>

#include "src/conv/reference.h"
#include "src/conv/swconv.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "workloads.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  namespace conv = swdnn::conv;

  std::printf("=== Multi-CG scaling (paper Section III-D) ===\n\n");

  // (a) Functional: 4 partitions on a 4x4 mesh, checked exactly.
  {
    swdnn::arch::Sw26010Spec spec = swdnn::arch::default_spec();
    spec.mesh_rows = spec.mesh_cols = 4;
    conv::SwConvolution sw(spec);
    const auto shape = conv::ConvShape::from_output(8, 8, 8, 8, 4, 3, 3);
    swdnn::util::Rng rng(1234);
    auto input = conv::make_input(shape);
    auto filter = conv::make_filter(shape);
    rng.fill_uniform(input.data(), -1, 1);
    rng.fill_uniform(filter.data(), -1, 1);
    auto expected = conv::make_output(shape);
    conv::reference_forward(input, filter, expected, shape);
    auto actual = conv::make_output(shape);
    const auto stats = sw.forward_multi_cg(input, filter, actual, shape, 4);
    std::printf("functional 4-partition run on %s: max |diff| vs "
                "reference = %.2e, parallel speedup %.2fx over serial "
                "execution of the partitions\n\n",
                shape.to_string().c_str(), expected.max_abs_diff(actual),
                stats.scaling_speedup());
  }

  // (b) Modeled: paper-scale layer across 1..4 CGs.
  {
    conv::SwConvolution sw;
    const auto shape = swdnn::bench::paper_shape(256, 256);
    const auto plan = sw.plan_for(shape).plan;
    const double per_cg = sw.cycle_accounted_gflops_per_cg(shape, plan);
    TextTable table;
    table.set_header({"CGs", "Gflops", "speedup", "efficiency"});
    for (int cgs = 1; cgs <= 4; ++cgs) {
      // Row partitioning: chip time = slowest partition.
      const double rows = static_cast<double>(shape.ro());
      const double part = std::ceil(rows / cgs);
      const double gf = per_cg * cgs * (rows / (part * cgs));
      table.add_row({std::to_string(cgs), fmt_double(gf, 0),
                     fmt_double(gf / per_cg, 2) + "x",
                     fmt_double(100.0 * gf / (per_cg * cgs), 1) + "%"});
    }
    std::printf("modeled scaling for %s, plan %s:\n%s\n",
                shape.to_string().c_str(), plan.to_string().c_str(),
                table.render().c_str());
    std::printf("64 output rows split 16/16/16/16 across 4 CGs -> the "
                "partitions are perfectly balanced and scaling is linear "
                "up to the launch overhead, matching the paper's 'near "
                "linear scaling among the four CGs'.\n");
  }
  return 0;
}
