// Reproduces the Section VI instruction-reordering analysis (Fig. 6):
// the compiler's schedule vs the hand-reordered one under the dual-issue
// rules, cycle counts, and the execution-efficiency formula
// EE(Ni) = (Ni/8*16) / (5 + (Ni/8 - 1)*17 + 16).

#include <cstdio>

#include "src/timing/kernels.h"
#include "src/util/table.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  namespace timing = swdnn::timing;

  timing::DualPipelineSimulator sim;

  std::printf("=== Section VI: double-pipeline instruction reordering "
              "===\n\n");

  const auto orig1 = sim.simulate(timing::original_stream(1));
  std::printf("Original schedule, one iteration: %llu cycles "
              "(paper: 8 vload + 1 cmp + 1 bnw + 16 vfmad = 26), "
              "EE = %.1f%% (paper: 61.5%%)\n",
              static_cast<unsigned long long>(orig1.cycles),
              100.0 * orig1.execution_efficiency());

  const auto re1 = sim.simulate(timing::reordered_stream(1));
  const auto re2 = sim.simulate(timing::reordered_stream(2));
  std::printf("Reordered schedule: prologue 5, steady iteration %llu "
              "(paper: 17), exit 16 -> cycles(n) = 5 + (n-1)*17 + 16\n\n",
              static_cast<unsigned long long>(re2.cycles - re1.cycles));

  std::printf("--- Cycle counts, simulated vs closed form ---\n");
  TextTable cyc;
  cyc.set_header({"iterations", "original(sim)", "reordered(sim)",
                  "reordered(closed)", "dual-issue cycles"});
  for (int n : {1, 2, 4, 8, 16, 32, 48}) {
    const auto o = sim.simulate(timing::original_stream(n));
    const auto r = sim.simulate(timing::reordered_stream(n));
    cyc.add_row({std::to_string(n),
                 std::to_string(o.cycles), std::to_string(r.cycles),
                 std::to_string(timing::cycles_reordered_closed_form(n)),
                 std::to_string(r.dual_issue_cycles)});
  }
  std::printf("%s\n", cyc.render().c_str());

  std::printf("--- EE(Ni): 'larger Ni will get higher execution "
              "efficiency' ---\n");
  TextTable ee;
  ee.set_header({"Ni", "iterations", "EE original", "EE reordered",
                 "EE closed form"});
  for (std::int64_t ni : {32, 64, 128, 192, 256, 320, 384}) {
    ee.add_row({std::to_string(ni),
                std::to_string(timing::inner_iterations_for_channels(ni)),
                fmt_double(100.0 * timing::simulated_ee(ni, false), 1) + "%",
                fmt_double(100.0 * timing::simulated_ee(ni, true), 1) + "%",
                fmt_double(100.0 * timing::ee_reordered_closed_form(ni), 1) +
                    "%"});
  }
  std::printf("%s\n", ee.render().c_str());
  return 0;
}
