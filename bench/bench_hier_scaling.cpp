// Hierarchical scale-out: the multi-CG scaling bench grown to the full
// node x CG hierarchy (DESIGN.md §17). Four sections:
//
//   (a) the original Section III-D view — output rows partitioned
//       across the four CGs of one node, checked bitwise (the intra-CG
//       level of the hierarchy);
//   (b) the modeled 1..4 CG scaling table at paper scale;
//   (c) the exchange scaling curve 1 -> 16 replicas: flat ring vs the
//       NoC-intra + ring-inter + broadcast hierarchy, with the
//       per-level time breakdown;
//   (d) measured (modeled-deterministic) training steps on the
//       HierarchicalTrainer at 16 replicas: hierarchical vs flat
//       exchange time, overlapped vs serialized step time, and the
//       bitwise contract — flat serialized, hierarchical serialized and
//       hierarchical overlapped must land on identical parameters.
//
// This bench is a CI gate: it exits non-zero unless, at 16 replicas,
// the hierarchy beats the flat ring by >= 1.3x on exchange time, the
// overlapped schedule beats the serialized one by >= 1.2x on step
// time, and the three execution modes are bitwise-identical. All times
// come from the deterministic interconnect/compute models, so the gate
// is machine-independent. Results land in BENCH_hier_scaling.json.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "src/conv/reference.h"
#include "src/conv/swconv.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/trainer.h"
#include "src/parallel/hierarchical.h"
#include "src/util/rng.h"
#include "src/util/table.h"
#include "workloads.h"

namespace {

using namespace swdnn;
using parallel::ExchangeMode;
using parallel::HierStepOptions;
using parallel::HierStepReport;
using parallel::HierTopology;

constexpr int kCgsPerNode = 4;
constexpr int kReplicas = 16;
constexpr int kShardBatch = 16;
constexpr int kSteps = 4;
constexpr double kHierGate = 1.3;
constexpr double kOverlapGate = 1.2;

/// The training workload: conv compute up front (late in backward, so
/// it overlaps the FC buckets' exchange) and a parameter-heavy FC head
/// (early in backward, so its bucket starts reducing first).
std::unique_ptr<dnn::Network> make_net() {
  util::Rng rng(4242);
  auto net = std::make_unique<dnn::Network>();
  net->emplace<dnn::Convolution>(
      conv::ConvShape::from_output(kShardBatch, 1, 8, 16, 16, 5, 5), rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::MaxPooling>(2);
  net->emplace<dnn::FullyConnected>(8 * 8 * 8, 48, rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(48, 4, rng);
  return net;
}

struct ModeRun {
  HierStepReport last;
  std::vector<double> params;  ///< replica 0 after kSteps (bitwise sig)
};

ModeRun run_mode(ExchangeMode exchange, bool overlap) {
  parallel::HierarchicalTrainer trainer(
      HierTopology::grid(kReplicas / kCgsPerNode, kCgsPerNode), make_net,
      /*learning_rate=*/0.05, /*momentum=*/0.9);
  trainer.compile({20, 20, 1, kShardBatch});

  dnn::SyntheticBars data(20, 4, 0.05, 777);
  HierStepOptions options;
  options.exchange = exchange;
  options.overlap = overlap;

  ModeRun run;
  for (int s = 0; s < kSteps; ++s) {
    std::vector<dnn::Batch> shards;
    shards.reserve(static_cast<std::size_t>(kReplicas));
    for (int r = 0; r < kReplicas; ++r) {
      shards.push_back(data.sample(kShardBatch));
    }
    run.last = trainer.train_step(shards, options);
  }
  for (const auto& pg : trainer.replica(0).params()) {
    const auto d = pg.param->data();
    run.params.insert(run.params.end(), d.begin(), d.end());
  }
  return run;
}

bool bitwise_equal(const std::vector<double>& a,
                   const std::vector<double>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  namespace conv = swdnn::conv;

  std::printf("=== Hierarchical scale-out (NoC-intra + ring-inter) ===\n\n");

  // (a) Intra-CG level: 4 row partitions on a 4x4 mesh, checked exactly.
  double multi_cg_speedup = 0;
  {
    swdnn::arch::Sw26010Spec spec = swdnn::arch::default_spec();
    spec.mesh_rows = spec.mesh_cols = 4;
    conv::SwConvolution sw(spec);
    const auto shape = conv::ConvShape::from_output(8, 8, 8, 8, 4, 3, 3);
    swdnn::util::Rng rng(1234);
    auto input = conv::make_input(shape);
    auto filter = conv::make_filter(shape);
    rng.fill_uniform(input.data(), -1, 1);
    rng.fill_uniform(filter.data(), -1, 1);
    auto expected = conv::make_output(shape);
    conv::reference_forward(input, filter, expected, shape);
    auto actual = conv::make_output(shape);
    const auto stats = sw.forward_multi_cg(input, filter, actual, shape, 4);
    multi_cg_speedup = stats.scaling_speedup();
    std::printf("intra-CG: functional 4-partition run on %s: max |diff| vs "
                "reference = %.2e, parallel speedup %.2fx\n\n",
                shape.to_string().c_str(), expected.max_abs_diff(actual),
                multi_cg_speedup);
  }

  // (b) Modeled 1..4 CG scaling at paper scale (Section III-D).
  {
    conv::SwConvolution sw;
    const auto shape = swdnn::bench::paper_shape(256, 256);
    const auto plan = sw.plan_for(shape).plan;
    const double per_cg = sw.cycle_accounted_gflops_per_cg(shape, plan);
    TextTable table;
    table.set_header({"CGs", "Gflops", "speedup", "efficiency"});
    for (int cgs = 1; cgs <= 4; ++cgs) {
      const double rows = static_cast<double>(shape.ro());
      const double part = std::ceil(rows / cgs);
      const double gf = per_cg * cgs * (rows / (part * cgs));
      table.add_row({std::to_string(cgs), fmt_double(gf, 0),
                     fmt_double(gf / per_cg, 2) + "x",
                     fmt_double(100.0 * gf / (per_cg * cgs), 1) + "%"});
    }
    std::printf("modeled multi-CG scaling for %s, plan %s:\n%s\n",
                shape.to_string().c_str(), plan.to_string().c_str(),
                table.render().c_str());
  }

  // (c) Exchange scaling curve 1 -> 16 replicas at this bench's
  // gradient size: flat ring vs hierarchy, per-level breakdown.
  std::int64_t grad_bytes = 0;
  {
    auto net = make_net();
    for (const auto& pg : net->params()) {
      grad_bytes +=
          static_cast<std::int64_t>(pg.param->data().size()) * 8;
    }
  }
  struct CurvePoint {
    int replicas = 0;
    double flat_us = 0;
    swdnn::parallel::HierExchangeBreakdown hier;
  };
  std::vector<CurvePoint> curve;
  {
    TextTable table;
    table.set_header({"replicas", "flat us", "intra-node us", "inter-node us",
                      "broadcast us", "hier us", "speedup"});
    for (int n : {1, 2, 4, 8, 16}) {
      const HierTopology topo = HierTopology::ragged(n, kCgsPerNode);
      std::vector<int> live_per_node;
      for (int j = 0; j < topo.nodes; ++j) {
        live_per_node.push_back(topo.ranks_in_node(j));
      }
      CurvePoint p;
      p.replicas = n;
      p.flat_us = swdnn::parallel::flat_exchange_seconds(grad_bytes, n) * 1e6;
      p.hier = swdnn::parallel::hier_exchange_seconds(grad_bytes,
                                                      live_per_node);
      curve.push_back(p);
      const double hier_us = p.hier.total() * 1e6;
      table.add_row({std::to_string(n), fmt_double(p.flat_us, 2),
                     fmt_double(p.hier.intra_reduce_seconds * 1e6, 2),
                     fmt_double(p.hier.inter_ring_seconds * 1e6, 2),
                     fmt_double(p.hier.intra_broadcast_seconds * 1e6, 2),
                     fmt_double(hier_us, 2),
                     hier_us > 0
                         ? fmt_double(p.flat_us / hier_us, 2) + "x"
                         : "-"});
    }
    std::printf("exchange scaling curve, %lld gradient bytes, %d CGs/node:\n"
                "%s\n",
                static_cast<long long>(grad_bytes), kCgsPerNode,
                table.render().c_str());
  }

  // (d) Training steps at 16 replicas under all three execution modes.
  const ModeRun flat_serial =
      run_mode(ExchangeMode::kFlatRing, /*overlap=*/false);
  const ModeRun hier_serial =
      run_mode(ExchangeMode::kHierarchical, /*overlap=*/false);
  const ModeRun hier_overlap =
      run_mode(ExchangeMode::kHierarchical, /*overlap=*/true);

  const HierStepReport& rep = hier_overlap.last;
  const double hier_speedup = rep.hier_exchange_speedup();
  const double overlap_speedup = rep.overlap_speedup();
  const bool bitwise =
      bitwise_equal(flat_serial.params, hier_serial.params) &&
      bitwise_equal(flat_serial.params, hier_overlap.params);

  std::printf("training at %d replicas (%d nodes x %d CGs), %d steps, "
              "shard batch %d:\n",
              kReplicas, kReplicas / kCgsPerNode, kCgsPerNode, kSteps,
              kShardBatch);
  std::printf("  exchange: flat ring %8.2f us   hierarchy %8.2f us "
              "(reduce %.2f + ring %.2f + bcast %.2f)   speedup %.2fx\n",
              rep.exchange_flat_seconds * 1e6,
              rep.exchange_hier.total() * 1e6,
              rep.exchange_hier.intra_reduce_seconds * 1e6,
              rep.exchange_hier.inter_ring_seconds * 1e6,
              rep.exchange_hier.intra_broadcast_seconds * 1e6, hier_speedup);
  std::printf("  step:     serialized %8.2f us   overlapped %8.2f us   "
              "speedup %.2fx   (fwd %.2f us, bwd %.2f us)\n",
              rep.step_serialized_seconds * 1e6,
              rep.step_overlapped_seconds * 1e6, overlap_speedup,
              rep.forward_seconds * 1e6, rep.backward_seconds * 1e6);
  std::printf("  bitwise (flat serialized == hier serialized == hier "
              "overlapped): %s\n\n",
              bitwise ? "yes" : "NO");

  const bool hier_ok = hier_speedup >= kHierGate;
  const bool overlap_ok = overlap_speedup >= kOverlapGate;
  std::printf("gates: hier exchange >= %.1fx: %s   overlap step >= %.1fx: "
              "%s   bitwise: %s\n",
              kHierGate, hier_ok ? "PASS" : "FAIL", kOverlapGate,
              overlap_ok ? "PASS" : "FAIL", bitwise ? "PASS" : "FAIL");

  const char* path = "BENCH_hier_scaling.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"hier_scaling\",\n");
  std::fprintf(f, "  \"replicas\": %d,\n  \"cgs_per_node\": %d,\n",
               kReplicas, kCgsPerNode);
  std::fprintf(f, "  \"gradient_bytes\": %lld,\n",
               static_cast<long long>(grad_bytes));
  std::fprintf(f, "  \"multi_cg_speedup\": %.3f,\n", multi_cg_speedup);
  std::fprintf(f, "  \"scaling_curve\": [\n");
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    std::fprintf(
        f,
        "    {\"replicas\": %d, \"flat_us\": %.3f, "
        "\"intra_reduce_us\": %.3f, \"inter_ring_us\": %.3f, "
        "\"intra_broadcast_us\": %.3f, \"hier_us\": %.3f}%s\n",
        p.replicas, p.flat_us, p.hier.intra_reduce_seconds * 1e6,
        p.hier.inter_ring_seconds * 1e6,
        p.hier.intra_broadcast_seconds * 1e6, p.hier.total() * 1e6,
        i + 1 < curve.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"exchange_flat_us\": %.3f,\n",
               rep.exchange_flat_seconds * 1e6);
  std::fprintf(f, "  \"exchange_hier_us\": %.3f,\n",
               rep.exchange_hier.total() * 1e6);
  std::fprintf(f, "  \"hier_exchange_speedup\": %.3f,\n", hier_speedup);
  std::fprintf(f, "  \"step_serialized_us\": %.3f,\n",
               rep.step_serialized_seconds * 1e6);
  std::fprintf(f, "  \"step_overlapped_us\": %.3f,\n",
               rep.step_overlapped_seconds * 1e6);
  std::fprintf(f, "  \"overlap_speedup\": %.3f,\n", overlap_speedup);
  std::fprintf(f, "  \"bitwise_identical\": %s,\n",
               bitwise ? "true" : "false");
  std::fprintf(f, "  \"gate_hier_speedup_min\": %.2f,\n", kHierGate);
  std::fprintf(f, "  \"gate_overlap_speedup_min\": %.2f,\n", kOverlapGate);
  std::fprintf(f, "  \"gates_passed\": %s\n",
               (hier_ok && overlap_ok && bitwise) ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  return (hier_ok && overlap_ok && bitwise) ? 0 : 1;
}
