// Per-shape crossover sweep for the multigrain conv mapping family.
//
// Three views of the same question — "does the chooser pick a
// different mesh mapping per shape regime, and is it right to?":
//   1. Modeled sweeps over the paper's Fig. 7 channel axis and Fig. 9
//      filter axis (B = 128, 64x64 outputs): the incumbents' home
//      turf. The per-PlanKind best modeled score is recorded for every
//      shape so crossovers are visible, not just the winner.
//   2. A modeled ragged-shape grid (small batch, small images, odd
//      channel mixes, large filters) where the incumbents' blocking
//      grids degenerate and the multigrain mappings take over.
//   3. Measured confirmation: on small regimes the winner flips, both
//      routes actually run on the functional simulator — the sim's
//      timed seconds decide, and every executed mapping is checked
//      bitwise against the reference convolution.
//
// Emits BENCH_multigrain.json. Exit status is a gate: nonzero unless
// the chooser switches mapping across the sweep AND at least two
// measured regimes show a multigrain winner beating the best
// executable incumbent by >= 1.2x both modeled and sim-measured, with
// all bitwise checks passing.

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "src/conv/reference.h"
#include "src/conv/swconv.h"
#include "src/perf/plan.h"
#include "src/util/rng.h"

namespace {

using namespace swdnn;
using conv::ConvShape;

/// Best modeled score per mapping family among the *executable* ranked
/// entries of one shape (0.0 = no executable plan of that kind).
struct FamilyScores {
  std::map<perf::PlanKind, double> best;
  std::optional<perf::PlanChoice> winner;          ///< executable[0]
  std::optional<perf::PlanChoice> best_incumbent;  ///< non-multigrain
  std::optional<perf::PlanChoice> best_multigrain;
};

FamilyScores family_scores(conv::SwConvolution& sw, const ConvShape& shape) {
  FamilyScores out;
  const auto lookup = sw.ranked_plans(shape);
  for (std::size_t e : lookup.entry->executable) {
    const perf::PlanChoice& ch = lookup.entry->ranked[e];
    const double g = ch.estimate.gflops_per_cg;
    if (!out.winner) out.winner = ch;
    auto [it, fresh] = out.best.try_emplace(ch.plan.kind, g);
    if (!fresh && g > it->second) it->second = g;
    if (perf::plan_kind_is_multigrain(ch.plan.kind)) {
      if (!out.best_multigrain ||
          g > out.best_multigrain->estimate.gflops_per_cg) {
        out.best_multigrain = ch;
      }
    } else if (!out.best_incumbent ||
               g > out.best_incumbent->estimate.gflops_per_cg) {
      out.best_incumbent = ch;
    }
  }
  return out;
}

double family_best(const FamilyScores& fs, perf::PlanKind kind) {
  const auto it = fs.best.find(kind);
  return it == fs.best.end() ? 0.0 : it->second;
}

/// One modeled sweep row, JSON-ready.
struct SweepRow {
  std::string axis;  ///< "fig7" | "fig9" | "ragged"
  ConvShape shape;
  std::string winner_plan;
  perf::PlanKind winner_kind = perf::PlanKind::kDirect;
  double winner_gflops = 0;
  double best_img = 0, best_batch = 0, best_fgrain = 0, best_pgrain = 0;
  bool has_incumbent = false;
  double multigrain_modeled_speedup = 0;  ///< best mg / best incumbent
};

SweepRow sweep_shape(conv::SwConvolution& sw, const std::string& axis,
                     const ConvShape& shape) {
  SweepRow row;
  row.axis = axis;
  row.shape = shape;
  const FamilyScores fs = family_scores(sw, shape);
  if (fs.winner) {
    row.winner_plan = fs.winner->plan.to_string();
    row.winner_kind = fs.winner->plan.kind;
    row.winner_gflops = fs.winner->estimate.gflops_per_cg;
  } else {
    row.winner_plan = "host";
  }
  row.best_img = family_best(fs, perf::PlanKind::kImageSizeAware);
  row.best_batch = family_best(fs, perf::PlanKind::kBatchSizeAware);
  row.best_fgrain = family_best(fs, perf::PlanKind::kFilterGrained);
  row.best_pgrain = family_best(fs, perf::PlanKind::kPixelGrained);
  row.has_incumbent = fs.best_incumbent.has_value();
  if (fs.best_incumbent && fs.best_multigrain) {
    row.multigrain_modeled_speedup =
        fs.best_multigrain->estimate.gflops_per_cg /
        fs.best_incumbent->estimate.gflops_per_cg;
  }
  return row;
}

/// One measured regime: both routes run on the simulator.
struct MeasuredRegime {
  std::string name;
  ConvShape shape;
  std::string incumbent_plan, multigrain_plan;
  double incumbent_gflops = 0, multigrain_gflops = 0;  ///< modeled
  double incumbent_seconds = 0, multigrain_seconds = 0;  ///< sim-timed
  double modeled_speedup = 0, measured_speedup = 0;
  bool incumbent_bitwise = false, multigrain_bitwise = false;
  bool multigrain_wins = false;  ///< chooser winner is multigrain
  bool gate_pass = false;        ///< wins && both speedups >= 1.2x && bitwise
};

constexpr double kGateSpeedup = 1.2;

MeasuredRegime measure_regime(conv::SwConvolution& sw, const std::string& name,
                              const ConvShape& shape) {
  MeasuredRegime r;
  r.name = name;
  r.shape = shape;
  const FamilyScores fs = family_scores(sw, shape);
  if (!fs.best_incumbent || !fs.best_multigrain) {
    std::fprintf(stderr, "regime %s: need both an incumbent and a "
                 "multigrain executable plan\n", name.c_str());
    return r;
  }
  r.incumbent_plan = fs.best_incumbent->plan.to_string();
  r.multigrain_plan = fs.best_multigrain->plan.to_string();
  r.incumbent_gflops = fs.best_incumbent->estimate.gflops_per_cg;
  r.multigrain_gflops = fs.best_multigrain->estimate.gflops_per_cg;
  r.multigrain_wins =
      fs.winner && perf::plan_kind_is_multigrain(fs.winner->plan.kind);

  util::Rng rng(1234);
  tensor::Tensor in = conv::make_input(shape);
  tensor::Tensor w = conv::make_filter(shape);
  rng.fill_uniform(in.data(), -1, 1);
  rng.fill_uniform(w.data(), -1, 1);
  tensor::Tensor ref = conv::make_output(shape);
  conv::reference_forward(in, w, ref, shape);
  const std::size_t bytes = static_cast<std::size_t>(ref.size()) * 8;

  tensor::Tensor out_inc = conv::make_output(shape);
  const conv::ForwardResult inc =
      sw.execute_choice(*fs.best_incumbent, in, w, out_inc, shape);
  r.incumbent_seconds = inc.stats.modeled_seconds();
  r.incumbent_bitwise =
      std::memcmp(out_inc.data().data(), ref.data().data(), bytes) == 0;

  tensor::Tensor out_mg = conv::make_output(shape);
  const conv::ForwardResult mg =
      sw.execute_choice(*fs.best_multigrain, in, w, out_mg, shape);
  r.multigrain_seconds = mg.stats.modeled_seconds();
  r.multigrain_bitwise =
      std::memcmp(out_mg.data().data(), ref.data().data(), bytes) == 0;

  r.modeled_speedup = r.multigrain_gflops / r.incumbent_gflops;
  r.measured_speedup = r.multigrain_seconds > 0
                           ? r.incumbent_seconds / r.multigrain_seconds
                           : 0.0;
  r.gate_pass = r.multigrain_wins && r.incumbent_bitwise &&
                r.multigrain_bitwise && r.modeled_speedup >= kGateSpeedup &&
                r.measured_speedup >= kGateSpeedup;
  return r;
}

void print_row(const SweepRow& row) {
  std::printf("%-6s B=%3" PRId64 " Ni=%3" PRId64 " No=%3" PRId64
              " out=%2" PRId64 " k=%2" PRId64
              " | win %-20s %8.1f | img %8.1f batch %8.1f fgrain %8.1f "
              "pgrain %8.1f\n",
              row.axis.c_str(), row.shape.batch, row.shape.ni, row.shape.no,
              row.shape.ro(), row.shape.kr, row.winner_plan.c_str(),
              row.winner_gflops, row.best_img, row.best_batch,
              row.best_fgrain, row.best_pgrain);
}

void json_rows(std::FILE* f, const char* key,
               const std::vector<SweepRow>& rows) {
  std::fprintf(f, "  \"%s\": [\n", key);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"batch\": %" PRId64 ", \"ni\": %" PRId64 ", \"no\": %" PRId64
        ", \"out\": %" PRId64 ", \"k\": %" PRId64
        ", \"winner\": \"%s\", \"winner_kind\": \"%s\", "
        "\"winner_gflops_per_cg\": %.3f, \"best_img\": %.3f, "
        "\"best_batch\": %.3f, \"best_fgrain\": %.3f, \"best_pgrain\": %.3f, "
        "\"multigrain_modeled_speedup\": %.3f}%s\n",
        r.shape.batch, r.shape.ni, r.shape.no, r.shape.ro(), r.shape.kr,
        r.winner_plan.c_str(), perf::plan_kind_name(r.winner_kind),
        r.winner_gflops, r.best_img, r.best_batch, r.best_fgrain,
        r.best_pgrain, r.multigrain_modeled_speedup,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
}

}  // namespace

int main() {
  conv::SwConvolution sw;

  // --- 1/2: modeled sweeps -----------------------------------------
  std::vector<SweepRow> fig7, fig9, ragged;
  for (const ConvShape& s : bench::fig7_configs()) {
    fig7.push_back(sweep_shape(sw, "fig7", s));
  }
  for (const ConvShape& s : bench::fig9_configs()) {
    fig9.push_back(sweep_shape(sw, "fig9", s));
  }
  // Ragged grid: the shapes the paper's figures never sweep — small
  // batch, small images, degenerate channel mixes, oversized filters.
  const std::vector<ConvShape> ragged_shapes = {
      ConvShape::from_output(1, 32, 32, 16, 16, 3, 3),
      ConvShape::from_output(2, 16, 16, 16, 16, 3, 3),
      ConvShape::from_output(4, 32, 32, 8, 8, 5, 5),
      ConvShape::from_output(8, 16, 16, 16, 16, 3, 3),
      ConvShape::from_output(8, 32, 32, 6, 6, 3, 3),
      ConvShape::from_output(8, 32, 32, 6, 6, 5, 5),
      ConvShape::from_output(8, 64, 64, 6, 6, 9, 9),
      ConvShape::from_output(16, 32, 64, 8, 8, 17, 17),
      ConvShape::from_output(16, 64, 64, 8, 8, 3, 3),
      ConvShape::from_output(16, 64, 64, 64, 64, 3, 3),
      ConvShape::from_output(16, 128, 128, 6, 6, 3, 3),
      ConvShape::from_output(32, 64, 64, 8, 8, 3, 3),
      ConvShape::from_output(128, 128, 128, 64, 64, 3, 3),
      ConvShape::from_output(128, 384, 384, 64, 64, 3, 3),
  };
  for (const ConvShape& s : ragged_shapes) {
    ragged.push_back(sweep_shape(sw, "ragged", s));
  }

  std::map<std::string, int> winner_histogram;
  for (const auto* rows : {&fig7, &fig9, &ragged}) {
    for (const SweepRow& r : *rows) {
      if (r.winner_gflops > 0) {
        ++winner_histogram[perf::plan_kind_name(r.winner_kind)];
      }
    }
  }

  std::printf("=== Multigrain crossover sweep: modeled winners ===\n");
  std::printf("fig7 channel axis (%zu shapes) and fig9 filter axis "
              "(%zu shapes): winner histogram\n", fig7.size(), fig9.size());
  for (const auto& [kind, count] : winner_histogram) {
    std::printf("  %-8s wins %3d shapes\n", kind.c_str(), count);
  }
  std::printf("--- ragged grid (per-PlanKind best modeled Gflop/s/CG) ---\n");
  for (const SweepRow& r : ragged) print_row(r);

  // --- 3: measured confirmation ------------------------------------
  // Regimes small enough that the functional simulator runs both
  // routes in seconds. Each pits the best executable incumbent against
  // the best executable multigrain plan on the SAME inputs.
  std::printf("--- measured regimes (timed simulator launches) ---\n");
  std::vector<MeasuredRegime> regimes;
  regimes.push_back(measure_regime(
      sw, "small-image", ConvShape::from_output(8, 32, 32, 6, 6, 3, 3)));
  regimes.push_back(measure_regime(
      sw, "mid-filter", ConvShape::from_output(8, 32, 32, 6, 6, 5, 5)));
  regimes.push_back(measure_regime(
      sw, "small-channel", ConvShape::from_output(8, 16, 16, 16, 16, 3, 3)));
  for (const MeasuredRegime& r : regimes) {
    std::printf("%-14s %s\n  incumbent  %-20s mdl %7.2f Gflop/s  sim "
                "%9.3f ms  bitwise %s\n  multigrain %-20s mdl %7.2f "
                "Gflop/s  sim %9.3f ms  bitwise %s\n  speedup: modeled "
                "%.2fx, measured %.2fx -> %s\n",
                r.name.c_str(), r.shape.to_string().c_str(),
                r.incumbent_plan.c_str(), r.incumbent_gflops,
                r.incumbent_seconds * 1e3, r.incumbent_bitwise ? "yes" : "NO",
                r.multigrain_plan.c_str(), r.multigrain_gflops,
                r.multigrain_seconds * 1e3,
                r.multigrain_bitwise ? "yes" : "NO", r.modeled_speedup,
                r.measured_speedup, r.gate_pass ? "PASS" : "fail");
  }

  // Measured-autotune protocol demo on the first regime: the handle's
  // own confirm-top-2-with-timed-launches path, not the bench's.
  const auto report = sw.autotune_plan_measured(regimes.front().shape);
  if (report) {
    std::printf("--- measured autotune (%s) ---\n",
                report->shape.to_string().c_str());
    for (std::size_t i = 0; i < report->candidates.size(); ++i) {
      const perf::MeasuredCandidate& c = report->candidates[i];
      std::printf("  cand[%zu]%s %-20s mdl %7.2f Gflop/s  sim %9.3f ms\n", i,
                  i == report->winner_index ? "*" : " ",
                  c.plan.to_string().c_str(), c.modeled_gflops_per_cg,
                  c.measured_seconds * 1e3);
    }
    std::printf("  measurement %s the modeled order\n",
                report->reordered ? "OVERTURNED" : "confirmed");
  }

  // --- gate ---------------------------------------------------------
  const bool chooser_switches = winner_histogram.size() >= 2;
  int winning_regimes = 0;
  bool all_bitwise = true;
  for (const MeasuredRegime& r : regimes) {
    if (r.gate_pass) ++winning_regimes;
    all_bitwise = all_bitwise && r.incumbent_bitwise && r.multigrain_bitwise;
  }
  const bool gate = chooser_switches && winning_regimes >= 2 && all_bitwise;
  std::printf("gate: chooser switches mapping: %s, winning measured "
              "regimes: %d/2, bitwise: %s -> %s\n",
              chooser_switches ? "yes" : "NO", winning_regimes,
              all_bitwise ? "yes" : "NO", gate ? "PASS" : "FAIL");

  // --- JSON ---------------------------------------------------------
  const char* path = "BENCH_multigrain.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"multigrain\",\n");
  std::fprintf(f, "  \"gate_speedup\": %.2f,\n", kGateSpeedup);
  std::fprintf(f, "  \"winner_histogram\": {");
  {
    std::size_t i = 0;
    for (const auto& [kind, count] : winner_histogram) {
      std::fprintf(f, "%s\"%s\": %d", i++ > 0 ? ", " : "", kind.c_str(),
                   count);
    }
  }
  std::fprintf(f, "},\n");
  json_rows(f, "fig7", fig7);
  json_rows(f, "fig9", fig9);
  json_rows(f, "ragged", ragged);
  std::fprintf(f, "  \"measured_regimes\": [\n");
  for (std::size_t i = 0; i < regimes.size(); ++i) {
    const MeasuredRegime& r = regimes[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"batch\": %" PRId64 ", \"ni\": %" PRId64
        ", \"no\": %" PRId64 ", \"out\": %" PRId64 ", \"k\": %" PRId64
        ", \"incumbent\": \"%s\", \"multigrain\": \"%s\", "
        "\"incumbent_gflops\": %.3f, \"multigrain_gflops\": %.3f, "
        "\"incumbent_sim_seconds\": %.6e, \"multigrain_sim_seconds\": %.6e, "
        "\"modeled_speedup\": %.3f, \"measured_speedup\": %.3f, "
        "\"bitwise\": %s, \"gate_pass\": %s}%s\n",
        r.name.c_str(), r.shape.batch, r.shape.ni, r.shape.no, r.shape.ro(),
        r.shape.kr, r.incumbent_plan.c_str(), r.multigrain_plan.c_str(),
        r.incumbent_gflops, r.multigrain_gflops, r.incumbent_seconds,
        r.multigrain_seconds, r.modeled_speedup, r.measured_speedup,
        (r.incumbent_bitwise && r.multigrain_bitwise) ? "true" : "false",
        r.gate_pass ? "true" : "false",
        i + 1 < regimes.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (report) {
    std::fprintf(f, "  \"measured_autotune\": {\"shape\": \"%s\", "
                 "\"reordered\": %s, \"winner\": \"%s\"},\n",
                 report->shape.to_string().c_str(),
                 report->reordered ? "true" : "false",
                 report->candidates[report->winner_index]
                     .plan.to_string().c_str());
  }
  std::fprintf(f, "  \"chooser_switches_mapping\": %s,\n",
               chooser_switches ? "true" : "false");
  std::fprintf(f, "  \"winning_measured_regimes\": %d,\n", winning_regimes);
  std::fprintf(f, "  \"gate_pass\": %s\n", gate ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  return gate ? 0 : 1;
}
