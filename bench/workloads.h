#pragma once
// The Figure 8 test-script workloads.
//
// The paper generates its evaluation configurations from three small
// scripts shown as Figure 8 (an image we cannot read exactly). The
// generators here are reconstructed from the facts the paper states:
//   * configs 1-21 come from the left script: Fig. 7's caption says
//     (Ni, No) ranges from (64, 64) to (384, 384) — 21 equal Ni=No
//     steps of 16;
//   * configs 22-101 come from the center script: 80 mixed (Ni, No)
//     combinations — an 8x10 grid with 32-channel steps;
//   * filter configs 1-30 come from the right script: Fig. 9 sweeps
//     3x3 .. 21x21 (10 odd sizes) at three channel settings.
// All with B = 128 and 64x64 output images, per the figure captions.
// EXPERIMENTS.md records this reconstruction.

#include <algorithm>
#include <vector>

#include "src/conv/shape.h"
#include "src/conv/swconv.h"

namespace swdnn::bench {

inline conv::ConvShape paper_shape(std::int64_t ni, std::int64_t no,
                                   std::int64_t k = 3) {
  return conv::ConvShape::from_output(128, ni, no, 64, 64, k, k);
}

/// Fig. 8 left script: configs 1-21, Ni = No in {64, 80, ..., 384}.
inline std::vector<conv::ConvShape> fig8_equal_channel_sweep() {
  std::vector<conv::ConvShape> shapes;
  for (std::int64_t ch = 64; ch <= 384; ch += 16) {
    shapes.push_back(paper_shape(ch, ch));
  }
  return shapes;
}

/// Fig. 8 center script: configs 22-101, 80 mixed (Ni, No) pairs.
inline std::vector<conv::ConvShape> fig8_mixed_channel_sweep() {
  std::vector<conv::ConvShape> shapes;
  for (std::int64_t ni = 64; ni <= 288; ni += 32) {      // 8 values
    for (std::int64_t no = 64; no <= 352; no += 32) {    // 10 values
      shapes.push_back(paper_shape(ni, no));
    }
  }
  return shapes;
}

/// All 101 Figure 7 configurations in paper order.
inline std::vector<conv::ConvShape> fig7_configs() {
  auto shapes = fig8_equal_channel_sweep();
  const auto mixed = fig8_mixed_channel_sweep();
  shapes.insert(shapes.end(), mixed.begin(), mixed.end());
  return shapes;
}

/// Best modeled Gflop/s per CG per mapping family among one shape's
/// *executable* ranked plans (0 = no executable plan of that family).
/// The figure benches print these next to the winner so per-shape
/// crossovers between mapping families are visible in the sweeps
/// themselves, not just in bench_multigrain.
struct PlanFamilyBests {
  double img = 0, batch = 0, fgrain = 0, pgrain = 0;
};

inline PlanFamilyBests plan_family_bests(conv::SwConvolution& sw,
                                         const conv::ConvShape& shape) {
  PlanFamilyBests out;
  const auto lookup = sw.ranked_plans(shape);
  for (std::size_t e : lookup.entry->executable) {
    const perf::PlanChoice& ch = lookup.entry->ranked[e];
    const double g = ch.estimate.gflops_per_cg;
    switch (ch.plan.kind) {
      case perf::PlanKind::kDirect:
        break;  // never executable
      case perf::PlanKind::kImageSizeAware:
        out.img = std::max(out.img, g);
        break;
      case perf::PlanKind::kBatchSizeAware:
        out.batch = std::max(out.batch, g);
        break;
      case perf::PlanKind::kFilterGrained:
        out.fgrain = std::max(out.fgrain, g);
        break;
      case perf::PlanKind::kPixelGrained:
        out.pgrain = std::max(out.pgrain, g);
        break;
    }
  }
  return out;
}

/// Fig. 8 right script: the 30 Figure 9 configurations — filter sizes
/// 3x3 .. 21x21 at three channel settings.
inline std::vector<conv::ConvShape> fig9_configs() {
  std::vector<conv::ConvShape> shapes;
  for (std::int64_t ch : {128, 256, 384}) {
    for (std::int64_t k = 3; k <= 21; k += 2) {
      shapes.push_back(paper_shape(ch, ch, k));
    }
  }
  return shapes;
}

}  // namespace swdnn::bench
