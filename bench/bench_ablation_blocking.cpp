// Ablations for the Section IV-VI design choices:
//   * LDM blocking parameters (bB, bCo) — the Eq. (1) landscape and the
//     LDM-feasibility frontier;
//   * DMA promotion (the §IV loop-hoisting extension);
//   * double buffering on/off;
//   * instruction reordering on/off;
//   * plan chooser decisions across the channel range.

#include <cstdio>

#include "src/perf/chooser.h"
#include "src/util/table.h"
#include "workloads.h"

int main() {
  using swdnn::util::TextTable;
  using swdnn::util::fmt_double;
  namespace perf = swdnn::perf;

  const auto& spec = swdnn::arch::default_spec();
  perf::PerformanceModel model(spec);
  perf::PlanChooser chooser(spec);

  std::printf("=== Ablation: LDM blocking (bB x bCo) for Ni=No=128 ===\n");
  std::printf("cells: Eq.(1) RBW GB/s -> modeled Gflops/CG; '-' = does "
              "not fit LDM\n\n");
  {
    const auto shape = swdnn::bench::paper_shape(128, 128);
    TextTable table;
    table.set_header({"bB\\bCo", "4", "8", "16", "32"});
    for (std::int64_t bb : {32L, 64L, 128L}) {
      std::vector<std::string> row = {std::to_string(bb)};
      for (std::int64_t bco : {4L, 8L, 16L, 32L}) {
        perf::ConvPlan plan;
        plan.kind = perf::PlanKind::kImageSizeAware;
        plan.block_b = bb;
        plan.block_co = bco;
        if (!perf::plan_feasible(shape, plan, spec)) {
          row.push_back("-");
          continue;
        }
        const auto e = model.estimate(shape, plan);
        row.push_back(fmt_double(e.rbw_mem_gbs, 1) + "->" +
                      fmt_double(e.gflops_per_cg, 0));
      }
      table.add_row(row);
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Larger bCo*bB lowers RBW (Eq. 1) until the tile "
                "overflows the LDM budget — the tension the chooser "
                "navigates.\n\n");
  }

  std::printf("=== Ablation: DMA promotion (Section IV extension) ===\n");
  {
    TextTable table;
    table.set_header({"config", "plan", "RBW base", "RBW promoted",
                      "Gflops/CG base", "Gflops/CG promoted"});
    for (auto ch : {64L, 128L, 256L}) {
      const auto shape = swdnn::bench::paper_shape(ch, ch);
      perf::ConvPlan plan;
      plan.kind = perf::PlanKind::kBatchSizeAware;
      plan.block_co = 8;
      auto promoted = plan;
      promoted.promote_filter_dma = true;
      if (!perf::plan_feasible(shape, promoted, spec)) continue;
      const auto e0 = model.estimate(shape, plan);
      const auto e1 = model.estimate(shape, promoted);
      table.add_row({std::to_string(ch) + "x" + std::to_string(ch),
                     plan.to_string(), fmt_double(e0.rbw_mem_gbs, 1),
                     fmt_double(e1.rbw_mem_gbs, 1),
                     fmt_double(e0.gflops_per_cg, 0),
                     fmt_double(e1.gflops_per_cg, 0)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Hoisting the filter get above the pixel loop amortizes "
                "it over the output-column tile; the gain is largest "
                "where 1/(Kc*No) dominates Eq. (2) — small No.\n\n");
  }

  std::printf("=== Ablation: double buffering and reordering ===\n");
  {
    TextTable table;
    table.set_header({"config", "full", "no double-buffer",
                      "no reordering", "neither"});
    for (auto ch : {128L, 256L, 384L}) {
      const auto shape = swdnn::bench::paper_shape(ch, ch);
      auto plan = chooser.choose(shape).plan;
      auto no_db = plan;
      no_db.double_buffer = false;
      auto no_re = plan;
      no_re.reordered_pipeline = false;
      auto neither = no_db;
      neither.reordered_pipeline = false;
      table.add_row(
          {std::to_string(ch) + "x" + std::to_string(ch),
           fmt_double(model.estimate(shape, plan).gflops_per_cg, 0),
           fmt_double(model.estimate(shape, no_db).gflops_per_cg, 0),
           fmt_double(model.estimate(shape, no_re).gflops_per_cg, 0),
           fmt_double(model.estimate(shape, neither).gflops_per_cg, 0)});
    }
    std::printf("%s\n", table.render().c_str());
  }

  std::printf("=== Plan chooser decisions across the channel range ===\n");
  {
    TextTable table;
    table.set_header({"Ni=No", "chosen plan", "RBW", "Gflops/CG",
                      "runner-up", "Gflops/CG"});
    for (std::int64_t ch = 64; ch <= 384; ch += 64) {
      const auto shape = swdnn::bench::paper_shape(ch, ch);
      const auto ranked = chooser.rank(shape);
      const auto& best = ranked.front();
      const auto* second = ranked.size() > 1 ? &ranked[1] : nullptr;
      table.add_row(
          {std::to_string(ch), best.plan.to_string(),
           fmt_double(best.estimate.rbw_mem_gbs, 1),
           fmt_double(best.estimate.gflops_per_cg, 0),
           second ? second->plan.to_string() : "-",
           second ? fmt_double(second->estimate.gflops_per_cg, 0) : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("The image plan wins while its tiles fit; the batch plan "
                "takes over at 256+ channels — the same switch the "
                "paper's Table III documents.\n");
  }
  return 0;
}
