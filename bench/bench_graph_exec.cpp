// Compiled-graph execution vs the eager layer walk on an AlexNet-like
// host-routed model: per-batch wall time, tensor allocations per batch,
// and the workspace arena's packed footprint against the
// one-buffer-per-tensor baseline. Results land in BENCH_graph_exec.json.
//
// This bench is a GATE: it exits nonzero unless the compiled path is at
// least as fast as eager (speedup >= 1.0 on the best-of-trials timing)
// AND mints no more tensors per batch than eager. With fusion removing
// a full elementwise pass per fused pair and the steady state
// allocation-free, a compiled step that loses to eager is a regression.

#include <cstdio>
#include <memory>

#include "src/dnn/backend_context.h"
#include "src/dnn/convolution.h"
#include "src/dnn/dropout.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/tensor/tensor.h"
#include "src/util/rng.h"
#include "src/util/stopwatch.h"

namespace {

constexpr std::int64_t kBatch = 6;
constexpr int kSteps = 5;
constexpr int kTrials = 3;

/// conv5x5(3->20) -> relu -> pool -> conv3x3(20->28) -> relu -> pool ->
/// fc(700->50) -> relu -> dropout -> fc(50->10) -> softmax over
/// 28x28x3 images. Channel counts indivisible by the 8x8 mesh keep
/// every dispatch on the host GEMM route, so the comparison isolates
/// graph-execution overheads, not simulator time.
std::unique_ptr<swdnn::dnn::Network> make_model() {
  using namespace swdnn;
  auto net = std::make_unique<dnn::Network>();
  util::Rng rng(1234);
  conv::ConvShape c1;
  c1.batch = kBatch;
  c1.ni = 3;
  c1.no = 20;
  c1.ri = 28;
  c1.ci = 28;
  c1.kr = 5;
  c1.kc = 5;
  net->emplace<dnn::Convolution>(c1, rng, dnn::ConvBackend::kHostIm2col,
                                 /*with_bias=*/true);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::MaxPooling>(2);  // 24x24x20 -> 12x12x20
  conv::ConvShape c2;
  c2.batch = kBatch;
  c2.ni = 20;
  c2.no = 28;
  c2.ri = 12;
  c2.ci = 12;
  c2.kr = 3;
  c2.kc = 3;
  net->emplace<dnn::Convolution>(c2, rng, dnn::ConvBackend::kHostIm2col,
                                 /*with_bias=*/true);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::MaxPooling>(2);  // 10x10x28 -> 5x5x28
  net->emplace<dnn::FullyConnected>(5 * 5 * 28, 50, rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::Dropout>(0.5, 99);
  net->emplace<dnn::FullyConnected>(50, 10, rng);
  net->emplace<dnn::Softmax>();
  return net;
}

struct ModeResult {
  double ns_per_batch = 0;
  double allocs_per_batch = 0;
};

/// Best-of-kTrials timing: each trial times kSteps forward+backward
/// rounds after one untimed warm-up step. The minimum over trials
/// filters scheduler noise so the gate compares steady-state costs.
ModeResult run_mode(swdnn::dnn::Network& net,
                    const swdnn::tensor::Tensor& input,
                    const swdnn::tensor::Tensor& d_out) {
  net.forward(input);
  net.backward(d_out);

  ModeResult r;
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t allocs_before = swdnn::tensor::allocation_count();
    swdnn::util::Stopwatch watch;
    for (int s = 0; s < kSteps; ++s) {
      net.forward(input);
      net.backward(d_out);
    }
    const double ns = watch.elapsed_seconds() * 1e9 / kSteps;
    if (trial == 0 || ns < r.ns_per_batch) r.ns_per_batch = ns;
    r.allocs_per_batch = static_cast<double>(
                             swdnn::tensor::allocation_count() -
                             allocs_before) /
                         kSteps;
  }
  return r;
}

}  // namespace

int main() {
  using namespace swdnn;

  auto net = make_model();
  tensor::Tensor input({28, 28, 3, kBatch});
  util::Rng data_rng(7);
  data_rng.fill_uniform(input.data(), -1, 1);
  tensor::Tensor d_out({10, kBatch});
  data_rng.fill_uniform(d_out.data(), -1, 1);

  // Eager first (the seed behaviour), then compile the same network and
  // rerun the identical step.
  const ModeResult eager = run_mode(*net, input, d_out);

  const dnn::CompiledStats& stats = net->compile({28, 28, 3, kBatch});
  const ModeResult compiled = run_mode(*net, input, d_out);
  const api::PlanCacheCounters cache = net->context()->plan_cache_counters();

  const double reduction_pct =
      100.0 * (1.0 - static_cast<double>(stats.arena_peak_bytes) /
                         static_cast<double>(stats.arena_naive_bytes));
  const double speedup = compiled.ns_per_batch > 0
                             ? eager.ns_per_batch / compiled.ns_per_batch
                             : 0.0;
  const bool throughput_ok = speedup >= 1.0;
  const bool allocs_ok = compiled.allocs_per_batch <= eager.allocs_per_batch;
  const bool gate_pass = throughput_ok && allocs_ok;

  std::printf("=== Compiled graph vs eager execution ===\n");
  std::printf("model: conv5x5(3->20)/pool/conv3x3(20->28)/pool/fc(700->50)/"
              "dropout/fc(50->10), batch %lld, %d timed steps, best of %d\n",
              static_cast<long long>(kBatch), kSteps, kTrials);
  std::printf("eager:     %12.0f ns/batch  %7.1f tensor allocs/batch\n",
              eager.ns_per_batch, eager.allocs_per_batch);
  std::printf("compiled:  %12.0f ns/batch  %7.1f tensor allocs/batch  "
              "(speedup %.2fx)\n",
              compiled.ns_per_batch, compiled.allocs_per_batch, speedup);
  std::printf("graph:     %llu nodes for %zu layers  (%llu conv+act fused, "
              "%llu fc+act fused, %llu pads elided)\n",
              static_cast<unsigned long long>(stats.graph_nodes),
              net->num_layers(),
              static_cast<unsigned long long>(stats.fused_conv_act),
              static_cast<unsigned long long>(stats.fused_fc_act),
              static_cast<unsigned long long>(stats.elided_pads));
  std::printf("autotune:  %llu shape(s) tuned at compile time\n",
              static_cast<unsigned long long>(stats.autotuned_shapes));
  std::printf("arena:     peak %lld B vs naive %lld B  (-%.1f%%), "
              "%zu slots, %llu allocation(s)\n",
              static_cast<long long>(stats.arena_peak_bytes),
              static_cast<long long>(stats.arena_naive_bytes), reduction_pct,
              stats.arena_slots,
              static_cast<unsigned long long>(stats.arena_allocations));
  std::printf("plan cache: %llu hits / %llu misses after compile-time "
              "warm-up\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses));
  std::printf("gate:      %s (throughput %s, allocations %s)\n",
              gate_pass ? "PASS" : "FAIL",
              throughput_ok ? "ok" : "compiled slower than eager",
              allocs_ok ? "ok" : "compiled allocates more than eager");

  const char* path = "BENCH_graph_exec.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"graph_exec\",\n");
  std::fprintf(f, "  \"batch\": %lld,\n", static_cast<long long>(kBatch));
  std::fprintf(f, "  \"timed_steps\": %d,\n", kSteps);
  std::fprintf(f, "  \"trials\": %d,\n", kTrials);
  std::fprintf(f, "  \"eager_ns_per_batch\": %.0f,\n", eager.ns_per_batch);
  std::fprintf(f, "  \"compiled_ns_per_batch\": %.0f,\n",
               compiled.ns_per_batch);
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"eager_tensor_allocs_per_batch\": %.1f,\n",
               eager.allocs_per_batch);
  std::fprintf(f, "  \"compiled_tensor_allocs_per_batch\": %.1f,\n",
               compiled.allocs_per_batch);
  std::fprintf(f, "  \"graph_nodes\": %llu,\n",
               static_cast<unsigned long long>(stats.graph_nodes));
  std::fprintf(f, "  \"fused_conv_act\": %llu,\n",
               static_cast<unsigned long long>(stats.fused_conv_act));
  std::fprintf(f, "  \"fused_fc_act\": %llu,\n",
               static_cast<unsigned long long>(stats.fused_fc_act));
  std::fprintf(f, "  \"elided_pads\": %llu,\n",
               static_cast<unsigned long long>(stats.elided_pads));
  std::fprintf(f, "  \"autotuned_shapes\": %llu,\n",
               static_cast<unsigned long long>(stats.autotuned_shapes));
  std::fprintf(f, "  \"arena_peak_bytes\": %lld,\n",
               static_cast<long long>(stats.arena_peak_bytes));
  std::fprintf(f, "  \"arena_naive_bytes\": %lld,\n",
               static_cast<long long>(stats.arena_naive_bytes));
  std::fprintf(f, "  \"arena_reduction_pct\": %.1f,\n", reduction_pct);
  std::fprintf(f, "  \"arena_slots\": %zu,\n", stats.arena_slots);
  std::fprintf(f, "  \"arena_allocations\": %llu,\n",
               static_cast<unsigned long long>(stats.arena_allocations));
  std::fprintf(f, "  \"plan_cache_hits\": %llu,\n",
               static_cast<unsigned long long>(cache.hits));
  std::fprintf(f, "  \"plan_cache_misses\": %llu,\n",
               static_cast<unsigned long long>(cache.misses));
  std::fprintf(f, "  \"gate_pass\": %s\n", gate_pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  if (!gate_pass) {
    std::fprintf(stderr,
                 "GATE FAILURE: compiled must beat eager "
                 "(speedup %.3f, allocs %.1f vs %.1f)\n",
                 speedup, compiled.allocs_per_batch, eager.allocs_per_batch);
    return 1;
  }
  return 0;
}
