// Host-measured microbenchmarks (google-benchmark): the functional
// kernels that actually execute on this machine. These are real timings
// — unlike the figure harnesses, which report the SW26010 model — and
// cover the substrate the examples and the simulator run on: the naive
// reference convolution, the im2col+GEMM lowering, the GEMM variants,
// the mesh simulator's launch overhead, and the layout transforms.

#include <benchmark/benchmark.h>

#include "src/conv/gemm.h"
#include "src/conv/im2col.h"
#include "src/conv/ldm_blocked.h"
#include "src/conv/reference.h"
#include "src/tensor/layout.h"
#include "src/util/rng.h"

namespace {

using namespace swdnn;

conv::ConvShape small_shape() {
  // Small enough for a 1-core host, large enough to be meaningful.
  return conv::ConvShape::from_output(4, 8, 8, 12, 12, 3, 3);
}

void BM_ReferenceConv(benchmark::State& state) {
  const auto shape = small_shape();
  util::Rng rng(1);
  auto input = conv::make_input(shape);
  auto filter = conv::make_filter(shape);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);
  auto output = conv::make_output(shape);
  for (auto _ : state) {
    conv::reference_forward(input, filter, output, shape);
    benchmark::DoNotOptimize(output.data().data());
  }
  state.SetItemsProcessed(state.iterations() * shape.flops());
}
BENCHMARK(BM_ReferenceConv);

void BM_Im2colConv(benchmark::State& state) {
  const auto shape = small_shape();
  util::Rng rng(2);
  auto input = conv::make_input(shape);
  auto filter = conv::make_filter(shape);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);
  auto output = conv::make_output(shape);
  for (auto _ : state) {
    conv::im2col_forward(input, filter, output, shape);
    benchmark::DoNotOptimize(output.data().data());
  }
  state.SetItemsProcessed(state.iterations() * shape.flops());
}
BENCHMARK(BM_Im2colConv);

void BM_GemmNaive(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(3);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  std::vector<double> b(static_cast<std::size_t>(n * n));
  std::vector<double> c(static_cast<std::size_t>(n * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  for (auto _ : state) {
    conv::gemm_naive(n, n, n, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128);

void BM_GemmBlocked(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  util::Rng rng(4);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  std::vector<double> b(static_cast<std::size_t>(n * n));
  std::vector<double> c(static_cast<std::size_t>(n * n));
  rng.fill_uniform(a, -1, 1);
  rng.fill_uniform(b, -1, 1);
  for (auto _ : state) {
    conv::gemm_blocked(n, n, n, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128);

void BM_MeshSimulatedConv(benchmark::State& state) {
  // Cost of simulating the full mesh algorithm (threads + buses + DMA
  // accounting) — how expensive level-1 fidelity is on the host.
  arch::Sw26010Spec spec = arch::default_spec();
  spec.mesh_rows = spec.mesh_cols = static_cast<int>(state.range(0));
  const auto shape = conv::ConvShape::from_output(8, 8, 8, 4, 4, 3, 3);
  perf::ConvPlan plan;
  plan.kind = perf::PlanKind::kBatchSizeAware;
  plan.block_co = 2;
  util::Rng rng(5);
  auto input = conv::make_input(shape);
  auto filter = conv::make_filter(shape);
  rng.fill_uniform(input.data(), -1, 1);
  rng.fill_uniform(filter.data(), -1, 1);
  auto output = conv::make_output(shape);
  sim::MeshExecutor exec(spec);
  for (auto _ : state) {
    conv::run_batch_size_aware(exec, input, filter, output, shape, plan);
    benchmark::DoNotOptimize(output.data().data());
  }
  state.SetItemsProcessed(state.iterations() * shape.flops());
}
BENCHMARK(BM_MeshSimulatedConv)->Arg(2)->Arg(4);

void BM_LayoutTransform(benchmark::State& state) {
  tensor::Tensor canon({16, 16, 8, 32});
  util::Rng rng(6);
  rng.fill_uniform(canon.data(), -1, 1);
  for (auto _ : state) {
    auto v = tensor::to_image_size_aware(canon);
    benchmark::DoNotOptimize(v.data().data());
  }
  state.SetBytesProcessed(state.iterations() * canon.size() * 8);
}
BENCHMARK(BM_LayoutTransform);

}  // namespace
