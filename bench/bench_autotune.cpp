// Schedule autotuning: modeled speedup of the tuned plan over the
// chooser's default schedule for the paper's convolution shapes.
// For each shape the autotuner searches register blocking (rb_b, rb_no)
// and DMA promotion — the schedule-only knobs — over the closed-form
// performance model and keeps the strictly-best variant. Results land
// in BENCH_autotune.json. Exits nonzero if any tuned plan models below
// its baseline (the default schedule is in the search space, so that
// would mean the tuner regressed).

#include <cstdio>
#include <vector>

#include "src/perf/autotune.h"
#include "src/perf/chooser.h"
#include "src/perf/plan.h"

namespace {

struct ShapeCase {
  const char* label;
  swdnn::conv::ConvShape shape;
};

/// The swDNN evaluation sweep: 64x64 output maps, batch 128, 3x3
/// kernels, channel counts from 64 to 384 — the regime where the paper
/// reports its double-precision convolution speedups.
std::vector<ShapeCase> paper_cases() {
  using swdnn::conv::ConvShape;
  std::vector<ShapeCase> cases;
  for (std::int64_t ch = 64; ch <= 384; ch += 64) {
    static char labels[6][32];
    char* label = labels[(ch / 64) - 1];
    std::snprintf(label, sizeof(labels[0]), "conv3x3_c%lld",
                  static_cast<long long>(ch));
    cases.push_back(
        {label, ConvShape::from_output(128, ch, ch, 64, 64, 3, 3)});
  }
  return cases;
}

}  // namespace

int main() {
  using namespace swdnn;

  perf::PlanChooser chooser;
  perf::ScheduleAutotuner tuner;
  const std::vector<ShapeCase> cases = paper_cases();
  std::vector<perf::AutotuneReport> reports;
  reports.reserve(cases.size());

  std::printf("=== Schedule autotuning (modeled, per shape) ===\n");
  std::printf("%-14s %10s %10s %8s %6s  tuned schedule\n", "shape",
              "base GF/cg", "tuned GF/cg", "speedup", "cands");

  bool all_ok = true;
  for (const ShapeCase& c : cases) {
    const auto ranked = chooser.rank(c.shape);
    perf::AutotuneReport report;
    tuner.tune_ranked(c.shape, ranked, &report);
    reports.push_back(report);

    const perf::ConvPlan& p = report.tuned_plan;
    std::printf("%-14s %10.2f %10.2f %7.2fx %6zu  %s rb_b=%lld rb_no=%lld "
                "dma(in=%d,filt=%d)\n",
                c.label, report.baseline_gflops_per_cg,
                report.tuned_gflops_per_cg, report.speedup(),
                report.candidates_scored, perf::plan_kind_name(p.kind),
                static_cast<long long>(p.rb_b),
                static_cast<long long>(p.rb_no),
                p.promote_input_dma ? 1 : 0, p.promote_filter_dma ? 1 : 0);
    if (report.speedup() < 1.0) all_ok = false;
  }

  const char* path = "BENCH_autotune.json";
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"autotune\",\n  \"shapes\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const perf::AutotuneReport& r = reports[i];
    const perf::ConvPlan& base = r.baseline_plan;
    const perf::ConvPlan& tuned = r.tuned_plan;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"label\": \"%s\",\n", cases[i].label);
    std::fprintf(f, "      \"plan_kind\": \"%s\",\n",
                 perf::plan_kind_name(tuned.kind));
    std::fprintf(f, "      \"baseline_gflops_per_cg\": %.3f,\n",
                 r.baseline_gflops_per_cg);
    std::fprintf(f, "      \"tuned_gflops_per_cg\": %.3f,\n",
                 r.tuned_gflops_per_cg);
    std::fprintf(f, "      \"speedup\": %.3f,\n", r.speedup());
    std::fprintf(f, "      \"candidates_scored\": %zu,\n",
                 r.candidates_scored);
    std::fprintf(f, "      \"baseline_rb_b\": %lld,\n",
                 static_cast<long long>(base.rb_b));
    std::fprintf(f, "      \"baseline_rb_no\": %lld,\n",
                 static_cast<long long>(base.rb_no));
    std::fprintf(f, "      \"tuned_rb_b\": %lld,\n",
                 static_cast<long long>(tuned.rb_b));
    std::fprintf(f, "      \"tuned_rb_no\": %lld,\n",
                 static_cast<long long>(tuned.rb_no));
    std::fprintf(f, "      \"tuned_promote_input_dma\": %s,\n",
                 tuned.promote_input_dma ? "true" : "false");
    std::fprintf(f, "      \"tuned_promote_filter_dma\": %s\n",
                 tuned.promote_filter_dma ? "true" : "false");
    std::fprintf(f, "    }%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"all_speedups_at_least_one\": %s\n}\n",
               all_ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s\n", path);

  if (!all_ok) {
    std::fprintf(stderr, "GATE FAILURE: a tuned plan modeled below its "
                         "baseline\n");
    return 1;
  }
  return 0;
}
