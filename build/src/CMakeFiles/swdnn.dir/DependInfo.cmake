
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/swdnn_api.cc" "src/CMakeFiles/swdnn.dir/api/swdnn_api.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/api/swdnn_api.cc.o.d"
  "/root/repo/src/arch/isa.cc" "src/CMakeFiles/swdnn.dir/arch/isa.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/arch/isa.cc.o.d"
  "/root/repo/src/arch/spec.cc" "src/CMakeFiles/swdnn.dir/arch/spec.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/arch/spec.cc.o.d"
  "/root/repo/src/conv/backward.cc" "src/CMakeFiles/swdnn.dir/conv/backward.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/backward.cc.o.d"
  "/root/repo/src/conv/fftconv.cc" "src/CMakeFiles/swdnn.dir/conv/fftconv.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/fftconv.cc.o.d"
  "/root/repo/src/conv/gemm.cc" "src/CMakeFiles/swdnn.dir/conv/gemm.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/gemm.cc.o.d"
  "/root/repo/src/conv/im2col.cc" "src/CMakeFiles/swdnn.dir/conv/im2col.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/im2col.cc.o.d"
  "/root/repo/src/conv/ldm_blocked.cc" "src/CMakeFiles/swdnn.dir/conv/ldm_blocked.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/ldm_blocked.cc.o.d"
  "/root/repo/src/conv/mesh_gemm_driver.cc" "src/CMakeFiles/swdnn.dir/conv/mesh_gemm_driver.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/mesh_gemm_driver.cc.o.d"
  "/root/repo/src/conv/reference.cc" "src/CMakeFiles/swdnn.dir/conv/reference.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/reference.cc.o.d"
  "/root/repo/src/conv/regcomm_gemm.cc" "src/CMakeFiles/swdnn.dir/conv/regcomm_gemm.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/regcomm_gemm.cc.o.d"
  "/root/repo/src/conv/shape.cc" "src/CMakeFiles/swdnn.dir/conv/shape.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/shape.cc.o.d"
  "/root/repo/src/conv/swconv.cc" "src/CMakeFiles/swdnn.dir/conv/swconv.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/swconv.cc.o.d"
  "/root/repo/src/conv/winograd.cc" "src/CMakeFiles/swdnn.dir/conv/winograd.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/conv/winograd.cc.o.d"
  "/root/repo/src/dnn/activations.cc" "src/CMakeFiles/swdnn.dir/dnn/activations.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/activations.cc.o.d"
  "/root/repo/src/dnn/convolution.cc" "src/CMakeFiles/swdnn.dir/dnn/convolution.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/convolution.cc.o.d"
  "/root/repo/src/dnn/dropout.cc" "src/CMakeFiles/swdnn.dir/dnn/dropout.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/dropout.cc.o.d"
  "/root/repo/src/dnn/fully_connected.cc" "src/CMakeFiles/swdnn.dir/dnn/fully_connected.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/fully_connected.cc.o.d"
  "/root/repo/src/dnn/loss.cc" "src/CMakeFiles/swdnn.dir/dnn/loss.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/loss.cc.o.d"
  "/root/repo/src/dnn/lrn.cc" "src/CMakeFiles/swdnn.dir/dnn/lrn.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/lrn.cc.o.d"
  "/root/repo/src/dnn/network.cc" "src/CMakeFiles/swdnn.dir/dnn/network.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/network.cc.o.d"
  "/root/repo/src/dnn/padding.cc" "src/CMakeFiles/swdnn.dir/dnn/padding.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/padding.cc.o.d"
  "/root/repo/src/dnn/pooling.cc" "src/CMakeFiles/swdnn.dir/dnn/pooling.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/pooling.cc.o.d"
  "/root/repo/src/dnn/relu.cc" "src/CMakeFiles/swdnn.dir/dnn/relu.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/relu.cc.o.d"
  "/root/repo/src/dnn/serialize.cc" "src/CMakeFiles/swdnn.dir/dnn/serialize.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/serialize.cc.o.d"
  "/root/repo/src/dnn/sgd.cc" "src/CMakeFiles/swdnn.dir/dnn/sgd.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/sgd.cc.o.d"
  "/root/repo/src/dnn/softmax.cc" "src/CMakeFiles/swdnn.dir/dnn/softmax.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/softmax.cc.o.d"
  "/root/repo/src/dnn/trainer.cc" "src/CMakeFiles/swdnn.dir/dnn/trainer.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/dnn/trainer.cc.o.d"
  "/root/repo/src/parallel/allreduce.cc" "src/CMakeFiles/swdnn.dir/parallel/allreduce.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/parallel/allreduce.cc.o.d"
  "/root/repo/src/parallel/data_parallel.cc" "src/CMakeFiles/swdnn.dir/parallel/data_parallel.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/parallel/data_parallel.cc.o.d"
  "/root/repo/src/perf/chooser.cc" "src/CMakeFiles/swdnn.dir/perf/chooser.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/perf/chooser.cc.o.d"
  "/root/repo/src/perf/dma_table.cc" "src/CMakeFiles/swdnn.dir/perf/dma_table.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/perf/dma_table.cc.o.d"
  "/root/repo/src/perf/k40m.cc" "src/CMakeFiles/swdnn.dir/perf/k40m.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/perf/k40m.cc.o.d"
  "/root/repo/src/perf/model.cc" "src/CMakeFiles/swdnn.dir/perf/model.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/perf/model.cc.o.d"
  "/root/repo/src/perf/plan.cc" "src/CMakeFiles/swdnn.dir/perf/plan.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/perf/plan.cc.o.d"
  "/root/repo/src/sim/dma.cc" "src/CMakeFiles/swdnn.dir/sim/dma.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/sim/dma.cc.o.d"
  "/root/repo/src/sim/executor.cc" "src/CMakeFiles/swdnn.dir/sim/executor.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/sim/executor.cc.o.d"
  "/root/repo/src/sim/ldm.cc" "src/CMakeFiles/swdnn.dir/sim/ldm.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/sim/ldm.cc.o.d"
  "/root/repo/src/sim/mesh.cc" "src/CMakeFiles/swdnn.dir/sim/mesh.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/sim/mesh.cc.o.d"
  "/root/repo/src/sim/noc.cc" "src/CMakeFiles/swdnn.dir/sim/noc.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/sim/noc.cc.o.d"
  "/root/repo/src/sim/regcomm.cc" "src/CMakeFiles/swdnn.dir/sim/regcomm.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/sim/regcomm.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/swdnn.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/sim/trace.cc.o.d"
  "/root/repo/src/tensor/layout.cc" "src/CMakeFiles/swdnn.dir/tensor/layout.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/tensor/layout.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/swdnn.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/timing/kernels.cc" "src/CMakeFiles/swdnn.dir/timing/kernels.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/timing/kernels.cc.o.d"
  "/root/repo/src/timing/pipeline.cc" "src/CMakeFiles/swdnn.dir/timing/pipeline.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/timing/pipeline.cc.o.d"
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/swdnn.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/util/cli.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/swdnn.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/util/logging.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/swdnn.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/util/rng.cc.o.d"
  "/root/repo/src/util/stopwatch.cc" "src/CMakeFiles/swdnn.dir/util/stopwatch.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/util/stopwatch.cc.o.d"
  "/root/repo/src/util/table.cc" "src/CMakeFiles/swdnn.dir/util/table.cc.o" "gcc" "src/CMakeFiles/swdnn.dir/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
