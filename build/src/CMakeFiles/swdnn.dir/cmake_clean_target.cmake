file(REMOVE_RECURSE
  "libswdnn.a"
)
