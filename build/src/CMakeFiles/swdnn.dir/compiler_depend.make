# Empty compiler generated dependencies file for swdnn.
# This may be replaced when dependencies are built.
