# Empty dependencies file for alexnet_mini.
# This may be replaced when dependencies are built.
