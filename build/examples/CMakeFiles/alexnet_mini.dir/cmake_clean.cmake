file(REMOVE_RECURSE
  "CMakeFiles/alexnet_mini.dir/alexnet_mini.cpp.o"
  "CMakeFiles/alexnet_mini.dir/alexnet_mini.cpp.o.d"
  "alexnet_mini"
  "alexnet_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alexnet_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
