file(REMOVE_RECURSE
  "CMakeFiles/layer_timing.dir/layer_timing.cpp.o"
  "CMakeFiles/layer_timing.dir/layer_timing.cpp.o.d"
  "layer_timing"
  "layer_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layer_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
