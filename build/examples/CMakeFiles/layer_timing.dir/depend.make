# Empty dependencies file for layer_timing.
# This may be replaced when dependencies are built.
