# Empty compiler generated dependencies file for train_cnn.
# This may be replaced when dependencies are built.
