# Empty compiler generated dependencies file for api_demo.
# This may be replaced when dependencies are built.
