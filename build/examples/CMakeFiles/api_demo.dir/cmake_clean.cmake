file(REMOVE_RECURSE
  "CMakeFiles/api_demo.dir/api_demo.cpp.o"
  "CMakeFiles/api_demo.dir/api_demo.cpp.o.d"
  "api_demo"
  "api_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/api_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
