file(REMOVE_RECURSE
  "CMakeFiles/data_parallel_training.dir/data_parallel_training.cpp.o"
  "CMakeFiles/data_parallel_training.dir/data_parallel_training.cpp.o.d"
  "data_parallel_training"
  "data_parallel_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_parallel_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
