# Empty dependencies file for data_parallel_training.
# This may be replaced when dependencies are built.
