# Empty dependencies file for bench_fig2_perfmodel.
# This may be replaced when dependencies are built.
