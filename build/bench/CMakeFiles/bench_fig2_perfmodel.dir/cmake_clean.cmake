file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_perfmodel.dir/bench_fig2_perfmodel.cpp.o"
  "CMakeFiles/bench_fig2_perfmodel.dir/bench_fig2_perfmodel.cpp.o.d"
  "bench_fig2_perfmodel"
  "bench_fig2_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
