# Empty dependencies file for bench_fig9_filter_sweep.
# This may be replaced when dependencies are built.
