# Empty dependencies file for bench_table3_model_eval.
# This may be replaced when dependencies are built.
