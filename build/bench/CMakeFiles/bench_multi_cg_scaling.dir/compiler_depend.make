# Empty compiler generated dependencies file for bench_multi_cg_scaling.
# This may be replaced when dependencies are built.
