file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_channel_sweep.dir/bench_fig7_channel_sweep.cpp.o"
  "CMakeFiles/bench_fig7_channel_sweep.dir/bench_fig7_channel_sweep.cpp.o.d"
  "bench_fig7_channel_sweep"
  "bench_fig7_channel_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_channel_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
