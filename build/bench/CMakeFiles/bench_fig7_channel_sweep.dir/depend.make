# Empty dependencies file for bench_fig7_channel_sweep.
# This may be replaced when dependencies are built.
