# Empty dependencies file for bench_host_kernels.
# This may be replaced when dependencies are built.
