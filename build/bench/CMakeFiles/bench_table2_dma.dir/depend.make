# Empty dependencies file for bench_table2_dma.
# This may be replaced when dependencies are built.
