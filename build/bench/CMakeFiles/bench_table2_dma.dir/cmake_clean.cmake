file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_dma.dir/bench_table2_dma.cpp.o"
  "CMakeFiles/bench_table2_dma.dir/bench_table2_dma.cpp.o.d"
  "bench_table2_dma"
  "bench_table2_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
