file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_regcomm.dir/bench_ablation_regcomm.cpp.o"
  "CMakeFiles/bench_ablation_regcomm.dir/bench_ablation_regcomm.cpp.o.d"
  "bench_ablation_regcomm"
  "bench_ablation_regcomm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regcomm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
