# Empty compiler generated dependencies file for bench_ablation_regcomm.
# This may be replaced when dependencies are built.
