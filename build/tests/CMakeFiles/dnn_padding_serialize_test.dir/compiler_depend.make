# Empty compiler generated dependencies file for dnn_padding_serialize_test.
# This may be replaced when dependencies are built.
