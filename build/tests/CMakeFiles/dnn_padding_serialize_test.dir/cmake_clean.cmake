file(REMOVE_RECURSE
  "CMakeFiles/dnn_padding_serialize_test.dir/dnn_padding_serialize_test.cc.o"
  "CMakeFiles/dnn_padding_serialize_test.dir/dnn_padding_serialize_test.cc.o.d"
  "dnn_padding_serialize_test"
  "dnn_padding_serialize_test.pdb"
  "dnn_padding_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_padding_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
