file(REMOVE_RECURSE
  "CMakeFiles/dnn_layers2_test.dir/dnn_layers2_test.cc.o"
  "CMakeFiles/dnn_layers2_test.dir/dnn_layers2_test.cc.o.d"
  "dnn_layers2_test"
  "dnn_layers2_test.pdb"
  "dnn_layers2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_layers2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
