# Empty dependencies file for dnn_layers2_test.
# This may be replaced when dependencies are built.
