# Empty dependencies file for conv_vectorized_test.
# This may be replaced when dependencies are built.
