file(REMOVE_RECURSE
  "CMakeFiles/conv_vectorized_test.dir/conv_vectorized_test.cc.o"
  "CMakeFiles/conv_vectorized_test.dir/conv_vectorized_test.cc.o.d"
  "conv_vectorized_test"
  "conv_vectorized_test.pdb"
  "conv_vectorized_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_vectorized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
