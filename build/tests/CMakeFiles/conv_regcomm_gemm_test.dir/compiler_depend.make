# Empty compiler generated dependencies file for conv_regcomm_gemm_test.
# This may be replaced when dependencies are built.
