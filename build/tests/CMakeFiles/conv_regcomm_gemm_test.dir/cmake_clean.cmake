file(REMOVE_RECURSE
  "CMakeFiles/conv_regcomm_gemm_test.dir/conv_regcomm_gemm_test.cc.o"
  "CMakeFiles/conv_regcomm_gemm_test.dir/conv_regcomm_gemm_test.cc.o.d"
  "conv_regcomm_gemm_test"
  "conv_regcomm_gemm_test.pdb"
  "conv_regcomm_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_regcomm_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
