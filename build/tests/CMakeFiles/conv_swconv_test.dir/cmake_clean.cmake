file(REMOVE_RECURSE
  "CMakeFiles/conv_swconv_test.dir/conv_swconv_test.cc.o"
  "CMakeFiles/conv_swconv_test.dir/conv_swconv_test.cc.o.d"
  "conv_swconv_test"
  "conv_swconv_test.pdb"
  "conv_swconv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_swconv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
