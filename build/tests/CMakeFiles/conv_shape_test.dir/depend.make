# Empty dependencies file for conv_shape_test.
# This may be replaced when dependencies are built.
