file(REMOVE_RECURSE
  "CMakeFiles/conv_shape_test.dir/conv_shape_test.cc.o"
  "CMakeFiles/conv_shape_test.dir/conv_shape_test.cc.o.d"
  "conv_shape_test"
  "conv_shape_test.pdb"
  "conv_shape_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_shape_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
