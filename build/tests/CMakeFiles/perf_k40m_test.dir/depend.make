# Empty dependencies file for perf_k40m_test.
# This may be replaced when dependencies are built.
