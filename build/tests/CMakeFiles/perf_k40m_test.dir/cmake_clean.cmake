file(REMOVE_RECURSE
  "CMakeFiles/perf_k40m_test.dir/perf_k40m_test.cc.o"
  "CMakeFiles/perf_k40m_test.dir/perf_k40m_test.cc.o.d"
  "perf_k40m_test"
  "perf_k40m_test.pdb"
  "perf_k40m_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_k40m_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
