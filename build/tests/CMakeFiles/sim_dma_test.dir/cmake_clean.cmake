file(REMOVE_RECURSE
  "CMakeFiles/sim_dma_test.dir/sim_dma_test.cc.o"
  "CMakeFiles/sim_dma_test.dir/sim_dma_test.cc.o.d"
  "sim_dma_test"
  "sim_dma_test.pdb"
  "sim_dma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_dma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
