# Empty dependencies file for dnn_layers_test.
# This may be replaced when dependencies are built.
