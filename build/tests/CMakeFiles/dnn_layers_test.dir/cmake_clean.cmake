file(REMOVE_RECURSE
  "CMakeFiles/dnn_layers_test.dir/dnn_layers_test.cc.o"
  "CMakeFiles/dnn_layers_test.dir/dnn_layers_test.cc.o.d"
  "dnn_layers_test"
  "dnn_layers_test.pdb"
  "dnn_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
