# Empty dependencies file for sim_ldm_test.
# This may be replaced when dependencies are built.
