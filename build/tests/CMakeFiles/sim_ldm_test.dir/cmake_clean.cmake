file(REMOVE_RECURSE
  "CMakeFiles/sim_ldm_test.dir/sim_ldm_test.cc.o"
  "CMakeFiles/sim_ldm_test.dir/sim_ldm_test.cc.o.d"
  "sim_ldm_test"
  "sim_ldm_test.pdb"
  "sim_ldm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_ldm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
