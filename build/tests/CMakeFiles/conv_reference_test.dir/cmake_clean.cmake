file(REMOVE_RECURSE
  "CMakeFiles/conv_reference_test.dir/conv_reference_test.cc.o"
  "CMakeFiles/conv_reference_test.dir/conv_reference_test.cc.o.d"
  "conv_reference_test"
  "conv_reference_test.pdb"
  "conv_reference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_reference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
