file(REMOVE_RECURSE
  "CMakeFiles/conv_winograd_test.dir/conv_winograd_test.cc.o"
  "CMakeFiles/conv_winograd_test.dir/conv_winograd_test.cc.o.d"
  "conv_winograd_test"
  "conv_winograd_test.pdb"
  "conv_winograd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_winograd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
