# Empty dependencies file for conv_winograd_test.
# This may be replaced when dependencies are built.
