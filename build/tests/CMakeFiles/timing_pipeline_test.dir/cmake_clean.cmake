file(REMOVE_RECURSE
  "CMakeFiles/timing_pipeline_test.dir/timing_pipeline_test.cc.o"
  "CMakeFiles/timing_pipeline_test.dir/timing_pipeline_test.cc.o.d"
  "timing_pipeline_test"
  "timing_pipeline_test.pdb"
  "timing_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
