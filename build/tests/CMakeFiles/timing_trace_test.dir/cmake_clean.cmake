file(REMOVE_RECURSE
  "CMakeFiles/timing_trace_test.dir/timing_trace_test.cc.o"
  "CMakeFiles/timing_trace_test.dir/timing_trace_test.cc.o.d"
  "timing_trace_test"
  "timing_trace_test.pdb"
  "timing_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
