# Empty compiler generated dependencies file for timing_trace_test.
# This may be replaced when dependencies are built.
