file(REMOVE_RECURSE
  "CMakeFiles/conv_fft_test.dir/conv_fft_test.cc.o"
  "CMakeFiles/conv_fft_test.dir/conv_fft_test.cc.o.d"
  "conv_fft_test"
  "conv_fft_test.pdb"
  "conv_fft_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
