# Empty compiler generated dependencies file for conv_ldm_blocked_test.
# This may be replaced when dependencies are built.
