file(REMOVE_RECURSE
  "CMakeFiles/conv_ldm_blocked_test.dir/conv_ldm_blocked_test.cc.o"
  "CMakeFiles/conv_ldm_blocked_test.dir/conv_ldm_blocked_test.cc.o.d"
  "conv_ldm_blocked_test"
  "conv_ldm_blocked_test.pdb"
  "conv_ldm_blocked_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_ldm_blocked_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
