# Empty compiler generated dependencies file for conv_stride_test.
# This may be replaced when dependencies are built.
