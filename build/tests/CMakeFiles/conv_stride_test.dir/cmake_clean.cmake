file(REMOVE_RECURSE
  "CMakeFiles/conv_stride_test.dir/conv_stride_test.cc.o"
  "CMakeFiles/conv_stride_test.dir/conv_stride_test.cc.o.d"
  "conv_stride_test"
  "conv_stride_test.pdb"
  "conv_stride_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_stride_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
