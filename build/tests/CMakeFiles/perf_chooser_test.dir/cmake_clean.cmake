file(REMOVE_RECURSE
  "CMakeFiles/perf_chooser_test.dir/perf_chooser_test.cc.o"
  "CMakeFiles/perf_chooser_test.dir/perf_chooser_test.cc.o.d"
  "perf_chooser_test"
  "perf_chooser_test.pdb"
  "perf_chooser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_chooser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
