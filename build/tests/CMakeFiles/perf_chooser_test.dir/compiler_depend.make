# Empty compiler generated dependencies file for perf_chooser_test.
# This may be replaced when dependencies are built.
