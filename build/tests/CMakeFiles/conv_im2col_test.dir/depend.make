# Empty dependencies file for conv_im2col_test.
# This may be replaced when dependencies are built.
