file(REMOVE_RECURSE
  "CMakeFiles/conv_im2col_test.dir/conv_im2col_test.cc.o"
  "CMakeFiles/conv_im2col_test.dir/conv_im2col_test.cc.o.d"
  "conv_im2col_test"
  "conv_im2col_test.pdb"
  "conv_im2col_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_im2col_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
