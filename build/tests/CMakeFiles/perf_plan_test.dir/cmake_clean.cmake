file(REMOVE_RECURSE
  "CMakeFiles/perf_plan_test.dir/perf_plan_test.cc.o"
  "CMakeFiles/perf_plan_test.dir/perf_plan_test.cc.o.d"
  "perf_plan_test"
  "perf_plan_test.pdb"
  "perf_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
