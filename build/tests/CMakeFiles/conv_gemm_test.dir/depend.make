# Empty dependencies file for conv_gemm_test.
# This may be replaced when dependencies are built.
