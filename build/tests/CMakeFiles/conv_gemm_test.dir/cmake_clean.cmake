file(REMOVE_RECURSE
  "CMakeFiles/conv_gemm_test.dir/conv_gemm_test.cc.o"
  "CMakeFiles/conv_gemm_test.dir/conv_gemm_test.cc.o.d"
  "conv_gemm_test"
  "conv_gemm_test.pdb"
  "conv_gemm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_gemm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
