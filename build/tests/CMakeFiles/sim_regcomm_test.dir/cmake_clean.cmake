file(REMOVE_RECURSE
  "CMakeFiles/sim_regcomm_test.dir/sim_regcomm_test.cc.o"
  "CMakeFiles/sim_regcomm_test.dir/sim_regcomm_test.cc.o.d"
  "sim_regcomm_test"
  "sim_regcomm_test.pdb"
  "sim_regcomm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_regcomm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
