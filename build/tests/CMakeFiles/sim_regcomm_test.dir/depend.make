# Empty dependencies file for sim_regcomm_test.
# This may be replaced when dependencies are built.
