# Empty dependencies file for conv_mesh_gemm_driver_test.
# This may be replaced when dependencies are built.
