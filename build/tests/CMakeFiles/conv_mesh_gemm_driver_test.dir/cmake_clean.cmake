file(REMOVE_RECURSE
  "CMakeFiles/conv_mesh_gemm_driver_test.dir/conv_mesh_gemm_driver_test.cc.o"
  "CMakeFiles/conv_mesh_gemm_driver_test.dir/conv_mesh_gemm_driver_test.cc.o.d"
  "conv_mesh_gemm_driver_test"
  "conv_mesh_gemm_driver_test.pdb"
  "conv_mesh_gemm_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_mesh_gemm_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
