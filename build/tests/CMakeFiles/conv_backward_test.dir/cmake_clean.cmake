file(REMOVE_RECURSE
  "CMakeFiles/conv_backward_test.dir/conv_backward_test.cc.o"
  "CMakeFiles/conv_backward_test.dir/conv_backward_test.cc.o.d"
  "conv_backward_test"
  "conv_backward_test.pdb"
  "conv_backward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_backward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
