# Empty dependencies file for dnn_mesh_backend_test.
# This may be replaced when dependencies are built.
