file(REMOVE_RECURSE
  "CMakeFiles/dnn_mesh_backend_test.dir/dnn_mesh_backend_test.cc.o"
  "CMakeFiles/dnn_mesh_backend_test.dir/dnn_mesh_backend_test.cc.o.d"
  "dnn_mesh_backend_test"
  "dnn_mesh_backend_test.pdb"
  "dnn_mesh_backend_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dnn_mesh_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
