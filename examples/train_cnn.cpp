// Train a small CNN end-to-end with the swDNN layer stack — the
// "training part" the paper positions swDNN for. The task is the
// synthetic oriented-bars classification problem; the network is
// conv -> relu -> maxpool -> fully-connected -> softmax cross-entropy,
// optimized with momentum SGD.
//
// Usage: train_cnn [--steps=80] [--batch=8] [--lr=0.2] [--classes=4]
//                  [--backend=host|mesh] [--eager=on]

#include <cstdio>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/trainer.h"
#include "src/util/cli.h"

int main(int argc, char** argv) {
  namespace dnn = swdnn::dnn;
  swdnn::util::CliArgs args(argc, argv);
  const int steps = static_cast<int>(args.get_int("steps", 80));
  const std::int64_t batch = args.get_int("batch", 8);
  const int classes = static_cast<int>(args.get_int("classes", 4));
  const double lr = args.get_double("lr", 0.2);
  const auto backend = args.get("backend", "host") == "mesh"
                           ? dnn::ConvBackend::kSimulatedMesh
                           : dnn::ConvBackend::kHostIm2col;

  std::printf("Training a CNN on synthetic oriented bars: %d classes, "
              "batch %lld, %d steps, lr %.2f, conv backend: %s\n\n",
              classes, static_cast<long long>(batch), steps, lr,
              backend == dnn::ConvBackend::kSimulatedMesh ? "simulated mesh"
                                                          : "host im2col");

  swdnn::util::Rng rng(99);
  dnn::Network net;
  // 8x8x1 -> conv 3x3 (4 maps) -> 6x6x4 -> relu -> pool2 -> 3x3x4 -> fc.
  net.emplace<dnn::Convolution>(
      swdnn::conv::ConvShape::from_output(batch, 1, 4, 6, 6, 3, 3), rng,
      backend);
  net.emplace<dnn::Relu>();
  net.emplace<dnn::MaxPooling>(2);
  net.emplace<dnn::FullyConnected>(3 * 3 * 4, classes, rng);

  // Compile the execution graph for the training shape: shape-checked
  // once, activations/gradients packed into the workspace arena, plans
  // warmed. --eager keeps the layer-by-layer seed behaviour instead.
  if (args.get("eager", "off") != "on") {
    const dnn::CompiledStats& stats = net.compile({8, 8, 1, batch});
    std::printf("compiled: arena %lld B packed vs %lld B naive "
                "(%zu tensors)\n\n",
                static_cast<long long>(stats.arena_peak_bytes),
                static_cast<long long>(stats.arena_naive_bytes),
                stats.arena_slots);
  }

  dnn::Sgd opt(lr, 0.9);
  dnn::Trainer trainer(net, opt);
  dnn::SyntheticBars data(8, classes, 0.05, 7);

  const int report_every = std::max(1, steps / 8);
  double loss_acc = 0;
  std::int64_t correct = 0;
  for (int step = 1; step <= steps; ++step) {
    const dnn::Batch b = data.sample(batch);
    const dnn::LossResult r = trainer.train_step(b);
    loss_acc += r.loss;
    correct += r.correct;
    if (step % report_every == 0) {
      std::printf("step %4d  loss %.4f  running accuracy %.2f\n", step,
                  loss_acc / report_every,
                  static_cast<double>(correct) /
                      static_cast<double>(report_every * batch));
      loss_acc = 0;
      correct = 0;
    }
  }

  const double accuracy = trainer.evaluate(data, batch, 16);
  std::printf("\nheld-out accuracy: %.2f (chance: %.2f)\n", accuracy,
              1.0 / classes);
  return accuracy > 1.5 / classes ? 0 : 1;
}
