// Pipeline viewer: render the Fig. 6 schedules cycle by cycle — which
// instruction issued to which pipeline when — for the compiler's order
// and the hand-reordered one. The view makes the paper's Section VI
// argument tangible: in the reordered stream almost every cycle
// dual-issues a vfmad (P0) with a load (P1).
//
// Usage: pipeline_viewer [--iterations=2] [--schedule=both|original|reordered]

#include <cstdio>
#include <map>

#include "src/timing/kernels.h"
#include "src/util/cli.h"

namespace {

void render(const char* title, const swdnn::arch::InstructionStream& stream,
            const swdnn::timing::SimResult& result,
            const swdnn::timing::IssueTrace& trace) {
  std::printf("--- %s: %llu cycles, %llu dual-issue, EE %.1f%% ---\n",
              title, static_cast<unsigned long long>(result.cycles),
              static_cast<unsigned long long>(result.dual_issue_cycles),
              100.0 * result.execution_efficiency());
  std::printf("%-7s %-22s %-22s\n", "cycle", "P0", "P1");

  std::map<std::uint64_t, std::pair<std::string, std::string>> rows;
  for (const auto& e : trace) {
    auto& row = rows[e.cycle];
    const std::string text = stream[e.index].to_string();
    (e.slot == '0' ? row.first : row.second) = text;
  }
  std::uint64_t last = 0;
  for (const auto& [cycle, row] : rows) {
    for (std::uint64_t stall = last + 1; stall < cycle; ++stall) {
      std::printf("%-7llu %-22s %-22s\n",
                  static_cast<unsigned long long>(stall), "(stall)", "");
    }
    std::printf("%-7llu %-22s %-22s\n",
                static_cast<unsigned long long>(cycle), row.first.c_str(),
                row.second.c_str());
    last = cycle;
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  swdnn::util::CliArgs args(argc, argv);
  const int iterations = static_cast<int>(args.get_int("iterations", 2));
  const std::string which = args.get("schedule", "both");

  swdnn::timing::DualPipelineSimulator sim;
  std::printf("GEMM inner loop, %d iteration(s); vload latency 4, vfmad "
              "latency 7, dual issue per Section VI rules\n\n",
              iterations);

  if (which == "both" || which == "original") {
    const auto stream = swdnn::timing::original_stream(iterations);
    swdnn::timing::IssueTrace trace;
    const auto result = sim.simulate(stream, &trace);
    render("original (compiler) schedule", stream, result, trace);
  }
  if (which == "both" || which == "reordered") {
    const auto stream = swdnn::timing::reordered_stream(iterations);
    swdnn::timing::IssueTrace trace;
    const auto result = sim.simulate(stream, &trace);
    render("reordered schedule (Section VI)", stream, result, trace);
  }
  return 0;
}
