// Hierarchical scale-out training: replicas organized as node x CG,
// gradients reduced intra-node over the NoC, inter-node over the
// resilient ring, broadcast back down — with bucketed comm/compute
// overlap — plus a pipeline-parallel run of the same network split
// across CGs. Kills a rank (then a whole node) mid-run to show the
// self-healing path at scale-out topology.
//
// Usage: train_hierarchical [--nodes=4] [--cgs=4] [--steps=12]

#include <cstdio>
#include <memory>
#include <vector>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/parallel/hierarchical.h"
#include "src/parallel/pipeline.h"
#include "src/util/cli.h"

namespace dnn = swdnn::dnn;
namespace parallel = swdnn::parallel;

namespace {

constexpr std::int64_t kShardBatch = 8;

std::unique_ptr<dnn::Network> make_replica() {
  swdnn::util::Rng rng(606);  // every replica identical
  auto net = std::make_unique<dnn::Network>();
  net->emplace<dnn::Convolution>(
      swdnn::conv::ConvShape::from_output(kShardBatch, 1, 8, 8, 8, 3, 3),
      rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::MaxPooling>(2);
  net->emplace<dnn::FullyConnected>(4 * 4 * 8, 32, rng);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(32, 4, rng);
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  swdnn::util::CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 4));
  const int cgs = static_cast<int>(args.get_int("cgs", 4));
  const int steps = static_cast<int>(args.get_int("steps", 12));

  const auto topo = parallel::HierTopology::grid(nodes, cgs);
  std::printf("hierarchical SGD: %d nodes x %d CGs = %d replicas, shard "
              "batch %lld (global %lld)\n\n",
              nodes, cgs, topo.total_ranks,
              static_cast<long long>(kShardBatch),
              static_cast<long long>(kShardBatch * topo.total_ranks));

  parallel::HierarchicalTrainer trainer(topo, make_replica, 0.1, 0.9);
  trainer.compile({10, 10, 1, kShardBatch});
  std::printf("gradient: %lld bytes in %zu buckets (fixed boundaries — "
              "part of the determinism contract)\n\n",
              static_cast<long long>(trainer.gradient_bytes()),
              trainer.buckets().size());

  dnn::SyntheticBars data(10, 4, 0.05, 31);
  parallel::HierStepReport report;
  for (int step = 1; step <= steps; ++step) {
    std::vector<dnn::Batch> shards;
    for (int r = 0; r < topo.total_ranks; ++r) {
      shards.push_back(data.sample(kShardBatch));
    }
    // Fault ladder mid-run: one CG dies, then its whole node, then
    // everything comes back — the canonical reduction just rescales
    // over the survivors, in the same fixed order.
    if (step == steps / 3) trainer.kill_rank(1);
    if (step == steps / 2) {
      for (int c = 0; c < cgs; ++c) trainer.kill_rank(cgs + c);
    }
    if (step == 2 * steps / 3) {
      for (int r = 0; r < topo.total_ranks; ++r) {
        if (!trainer.rank_alive(r)) trainer.revive_rank(r);
      }
    }
    report = trainer.train_step(shards);
    if (step == 1 || step % 4 == 0 || report.live_ranks < topo.total_ranks) {
      std::printf("step %2d: loss %.4f  live %2d/%d ranks on %d nodes  "
                  "exchange flat %6.1f us vs hier %6.1f us (%.2fx)  "
                  "step serialized %6.1f vs overlapped %6.1f us (%.2fx)\n",
                  step, report.loss, report.live_ranks, topo.total_ranks,
                  report.live_nodes, report.exchange_flat_seconds * 1e6,
                  report.exchange_hier.total() * 1e6,
                  report.hier_exchange_speedup(),
                  report.step_serialized_seconds * 1e6,
                  report.step_overlapped_seconds * 1e6,
                  report.overlap_speedup());
    }
  }
  std::printf("\nreplica divergence after the kill/revive ladder: %.1e "
              "(must be exactly 0)\n\n",
              trainer.max_replica_divergence());

  // The same network as a pipeline: layer stack split across CGs,
  // micro-batches flowing through a 1F1B schedule, arena-staged stage
  // boundaries — bitwise-identical to single-replica stepping.
  const int stages = 3, micro = 4;
  parallel::PipelineParallelTrainer pp(stages, micro, make_replica, 0.1,
                                       0.9);
  pp.compile({10, 10, 1, kShardBatch}, nullptr);  // per-micro-batch dims

  auto ref_net = make_replica();
  dnn::Sgd ref_opt(0.1, 0.9);
  dnn::SyntheticBars pipe_data(10, 4, 0.05, 31);
  double pipe_loss = 0, ref_loss = 0;
  for (int step = 1; step <= 4; ++step) {
    const dnn::Batch batch = pipe_data.sample(kShardBatch * micro);
    const auto r = pp.train_step(batch);
    pipe_loss = r.loss;
    ref_loss = parallel::PipelineParallelTrainer::reference_step(
                   *ref_net, ref_opt, batch, micro)
                   .loss;
  }
  std::printf("pipeline: %d stages x %d micro-batches, %zu schedule ticks, "
              "staging peak %lld bytes (naive double-buffer %lld)\n",
              stages, micro, pp.schedule().size(),
              static_cast<long long>(pp.staging_peak_bytes()),
              static_cast<long long>(pp.staging_naive_bytes()));
  std::printf("pipeline loss %.6f vs single-replica reference %.6f, max "
              "param divergence %.1e (must be exactly 0)\n",
              pipe_loss, ref_loss, pp.max_param_divergence(*ref_net));
  return 0;
}
