// Fault injection and self-healing execution — what a resilience drill
// on a deployed swDNN looks like. The demo runs the same convolution
// under three conditions:
//
//   1. a fault-free baseline,
//   2. a transient-fault campaign (the first DMA attempts on every CPE
//      fail) absorbed by the handle's tile-level retry policy, with the
//      output verified bitwise identical to the baseline,
//   3. a persistent-fault campaign that exhausts the retries and
//      degrades the call to the host GEMM route,
//
// then kills one rank of a data-parallel training run mid-flight and
// shows the survivors converging on the rebuilt ring, with the
// Trainer's checkpoint/rollback absorbing a corrupted step.
//
// Usage: fault_injection_demo [--mesh=2|4|8]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <vector>

#include "src/api/swdnn_api.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/relu.h"
#include "src/dnn/trainer.h"
#include "src/parallel/data_parallel.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

namespace api = swdnn::api;

namespace {

void print_counters(const api::Handle* handle) {
  api::FaultCounters c;
  api::fault_counters(handle, &c);
  std::printf("  faults: dma=%llu misalign=%llu ldm=%llu+%llu bus=%llu "
              "noc=%llu | retries=%llu host_fallbacks=%llu\n",
              static_cast<unsigned long long>(c.dma_transfer_faults),
              static_cast<unsigned long long>(c.dma_misalign_faults),
              static_cast<unsigned long long>(c.ldm_capacity_faults),
              static_cast<unsigned long long>(c.ldm_bitflip_faults),
              static_cast<unsigned long long>(c.regcomm_stalls),
              static_cast<unsigned long long>(c.noc_link_faults),
              static_cast<unsigned long long>(c.dma_retries),
              static_cast<unsigned long long>(c.host_fallbacks));
}

const char* route_name(const api::Handle* handle) {
  switch (api::last_execution_route(handle)) {
    case api::ExecutionRoute::kSimulatedMesh: return "simulated mesh";
    case api::ExecutionRoute::kHostGemm: return "host GEMM fallback";
    default: return "none";
  }
}

std::unique_ptr<swdnn::dnn::Network> make_net(std::int64_t batch) {
  swdnn::util::Rng rng(555);
  auto net = std::make_unique<swdnn::dnn::Network>();
  net->emplace<swdnn::dnn::Convolution>(
      swdnn::conv::ConvShape::from_output(batch, 1, 2, 2, 2, 3, 3), rng);
  net->emplace<swdnn::dnn::Relu>();
  net->emplace<swdnn::dnn::FullyConnected>(2 * 2 * 2, 3, rng);
  return net;
}

}  // namespace

int main(int argc, char** argv) {
  swdnn::util::CliArgs args(argc, argv);
  swdnn::arch::Sw26010Spec spec = swdnn::arch::default_spec();
  const int mesh = static_cast<int>(args.get_int("mesh", 2));
  spec.mesh_rows = spec.mesh_cols = mesh < 1 ? 2 : mesh;

  api::Handle* handle = nullptr;
  api::create(&handle, &spec);

  // A mesh-compatible layer on this mesh size.
  const int m = spec.mesh_rows;
  const auto shape =
      swdnn::conv::ConvShape::from_output(4, m, m, 3, 4, 2, 2);
  api::TensorDescriptor x_desc, y_desc;
  api::FilterDescriptor w_desc;
  api::set_tensor4d_descriptor(x_desc, shape.ri, shape.ci, shape.ni,
                               shape.batch);
  api::set_filter_descriptor(w_desc, shape.kr, shape.kc, shape.ni, shape.no);
  api::get_convolution_output_descriptor(x_desc, w_desc, y_desc);

  swdnn::util::Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(
      x_desc.rows * x_desc.cols * x_desc.channels * x_desc.batch));
  std::vector<double> w(static_cast<std::size_t>(w_desc.kr * w_desc.kc *
                                                 w_desc.ni * w_desc.no));
  std::vector<double> baseline(static_cast<std::size_t>(
      y_desc.rows * y_desc.cols * y_desc.channels * y_desc.batch));
  rng.fill_uniform(x, -1, 1);
  rng.fill_uniform(w, -1, 1);

  // 1. Fault-free baseline.
  api::convolution_forward(handle, x_desc, x.data(), w_desc, w.data(),
                           y_desc, baseline.data());
  std::printf("baseline forward: route = %s\n", route_name(handle));

  // 2. Transient campaign: the first two DMA attempts on every CPE
  //    fault; four attempts with backoff absorb them at tile level.
  swdnn::sim::FaultPlan transient;
  transient.seed = 2026;
  transient.fail_first_dma = 2;
  api::set_fault_plan(handle, &transient);
  api::set_retry_policy(handle, /*max_attempts=*/4, /*backoff_cycles=*/16);
  std::vector<double> retried(baseline.size());
  api::convolution_forward(handle, x_desc, x.data(), w_desc, w.data(),
                           y_desc, retried.data());
  std::printf("transient campaign: route = %s, output %s baseline\n",
              route_name(handle),
              std::memcmp(retried.data(), baseline.data(),
                          baseline.size() * sizeof(double)) == 0
                  ? "bitwise identical to"
                  : "DIFFERS from");
  print_counters(handle);

  // 3. Persistent campaign: every attempt faults, retries exhaust, the
  //    call degrades to the host route instead of returning garbage.
  swdnn::sim::FaultPlan persistent;
  persistent.seed = 2026;
  persistent.fail_first_dma = 1u << 20;
  api::set_fault_plan(handle, &persistent);
  std::vector<double> degraded(baseline.size());
  api::convolution_forward(handle, x_desc, x.data(), w_desc, w.data(),
                           y_desc, degraded.data());
  std::printf("persistent campaign: route = %s (\"%s\")\n",
              route_name(handle), api::last_error_message(handle));
  print_counters(handle);
  api::destroy(handle);

  // 4. Self-healing data-parallel training: kill a rank mid-run.
  std::printf("\ndata-parallel training, 3 ranks, killing rank 1 at step "
              "5:\n");
  swdnn::parallel::DataParallelTrainer dp(3, [] { return make_net(4); }, 0.3);
  swdnn::dnn::SyntheticBars data(4, 3, 0.05, 68);
  for (int step = 0; step < 15; ++step) {
    if (step == 5) dp.kill_rank(1);
    std::vector<swdnn::dnn::Batch> shards;
    for (int node = 0; node < 3; ++node) shards.push_back(data.sample(4));
    const auto r = dp.train_step(shards);
    if (step % 2 == 0 || step == 5) {
      std::printf("  step %2d: live=%d loss=%.3f\n", step, r.live_nodes,
                  r.loss);
    }
  }
  std::printf("  survivor divergence: %.1e (lockstep held)\n",
              dp.max_replica_divergence());

  // 5. Checkpoint/rollback: a NaN-poisoned batch (the signature of an
  //    unhealed LDM bit flip) is rolled back instead of applied.
  std::printf("\ncheckpointed trainer taking a corrupted batch:\n");
  auto net = make_net(8);
  swdnn::dnn::Sgd opt(0.3);
  swdnn::dnn::Trainer trainer(*net, opt);
  trainer.enable_checkpointing("/tmp/swdnn_demo_ckpt.bin", 1);
  for (int step = 0; step < 4; ++step) {
    trainer.train_step_resilient(data.sample(8));
  }
  swdnn::dnn::Batch poison = data.sample(8);
  poison.images.data()[0] = std::numeric_limits<double>::quiet_NaN();
  const auto faulted = trainer.train_step_resilient(poison);
  std::printf("  corrupted step rolled back: %s (checkpoints written: %d)\n",
              faulted.rolled_back ? "yes" : "NO", trainer.checkpoints_written());
  const auto clean = trainer.train_step_resilient(data.sample(8));
  std::printf("  next step trains normally: loss=%.3f rolled_back=%s\n",
              clean.loss.loss, clean.rolled_back ? "yes" : "no");
  std::remove("/tmp/swdnn_demo_ckpt.bin");
  return 0;
}
