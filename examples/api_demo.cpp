// The handle/descriptor API — how a framework integration (a Caffe or
// TensorFlow backend, as the paper envisions) consumes swDNN: opaque
// handle, plain descriptors, raw buffers, status codes. Runs a forward
// convolution and both gradients through the API, verifies against the
// reference kernels, and shows the planning query and the execution
// routing.
//
// Usage: api_demo [--mesh=2|4|8]

#include <cstdio>
#include <vector>

#include "src/api/swdnn_api.h"
#include "src/conv/reference.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

namespace api = swdnn::api;

#define CHECK_STATUS(call)                                              \
  do {                                                                  \
    const api::Status status_ = (call);                                 \
    if (status_ != api::Status::kSuccess) {                             \
      std::fprintf(stderr, "%s failed: %s\n", #call,                    \
                   api::status_string(status_));                        \
      return 1;                                                         \
    }                                                                   \
  } while (0)

int main(int argc, char** argv) {
  swdnn::util::CliArgs args(argc, argv);
  swdnn::arch::Sw26010Spec spec = swdnn::arch::default_spec();
  spec.mesh_rows = spec.mesh_cols = static_cast<int>(args.get_int("mesh", 4));

  api::Handle* handle = nullptr;
  CHECK_STATUS(api::create(&handle, &spec));
  std::printf("swDNN handle created (simulated %dx%d CPE mesh)\n",
              spec.mesh_rows, spec.mesh_cols);

  // Describe a layer: 8x8 input, 4->8 channels, 3x3 filter, batch 8.
  api::TensorDescriptor x_desc, y_desc;
  api::FilterDescriptor w_desc;
  CHECK_STATUS(api::set_tensor4d_descriptor(x_desc, 8, 8, 4, 8));
  CHECK_STATUS(api::set_filter_descriptor(w_desc, 3, 3, 4, 8));
  CHECK_STATUS(api::get_convolution_output_descriptor(x_desc, w_desc,
                                                      y_desc));
  std::printf("conv: in %lldx%lldx%lld (B=%lld) -> out %lldx%lldx%lld\n",
              static_cast<long long>(x_desc.rows),
              static_cast<long long>(x_desc.cols),
              static_cast<long long>(x_desc.channels),
              static_cast<long long>(x_desc.batch),
              static_cast<long long>(y_desc.rows),
              static_cast<long long>(y_desc.cols),
              static_cast<long long>(y_desc.channels));

  // Buffers, filled with random data.
  swdnn::util::Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(
      x_desc.rows * x_desc.cols * x_desc.channels * x_desc.batch));
  std::vector<double> w(static_cast<std::size_t>(w_desc.kr * w_desc.kc *
                                                 w_desc.ni * w_desc.no));
  std::vector<double> y(static_cast<std::size_t>(
      y_desc.rows * y_desc.cols * y_desc.channels * y_desc.batch));
  rng.fill_uniform(x, -1, 1);
  rng.fill_uniform(w, -1, 1);

  CHECK_STATUS(api::convolution_forward(handle, x_desc, x.data(), w_desc,
                                        w.data(), y_desc, y.data()));
  std::printf("forward executed via %s\n",
              api::last_execution_route(handle) ==
                      api::ExecutionRoute::kSimulatedMesh
                  ? "the simulated mesh"
                  : "the host GEMM fallback");

  // Cross-check against the reference kernel.
  const auto shape = swdnn::conv::ConvShape::from_output(
      x_desc.batch, w_desc.ni, w_desc.no, y_desc.rows, y_desc.cols,
      w_desc.kr, w_desc.kc);
  auto in_t = swdnn::conv::make_input(shape);
  auto w_t = swdnn::conv::make_filter(shape);
  std::copy(x.begin(), x.end(), in_t.data().begin());
  std::copy(w.begin(), w.end(), w_t.data().begin());
  auto expected = swdnn::conv::make_output(shape);
  swdnn::conv::reference_forward(in_t, w_t, expected, shape);
  double worst = 0;
  for (std::int64_t i = 0; i < expected.size(); ++i) {
    worst = std::max(worst, std::abs(expected.data()[i] -
                                     y[static_cast<std::size_t>(i)]));
  }
  std::printf("max |diff| vs reference: %.2e\n", worst);

  // Gradients through the API.
  std::vector<double> dy(y.size());
  rng.fill_uniform(dy, -1, 1);
  std::vector<double> dx(x.size()), dw(w.size());
  CHECK_STATUS(api::convolution_backward_data(handle, w_desc, w.data(),
                                              y_desc, dy.data(), x_desc,
                                              dx.data()));
  CHECK_STATUS(api::convolution_backward_filter(handle, x_desc, x.data(),
                                                y_desc, dy.data(), w_desc,
                                                dw.data()));
  std::printf("backward data + filter executed\n");

  // The planning query at paper scale.
  api::TensorDescriptor big_x;
  api::FilterDescriptor big_w;
  api::set_tensor4d_descriptor(big_x, 66, 66, 256, 128);
  api::set_filter_descriptor(big_w, 3, 3, 256, 256);
  double gflops = 0;
  api::Handle* paper_handle = nullptr;
  CHECK_STATUS(api::create(&paper_handle));
  CHECK_STATUS(api::get_convolution_estimate(paper_handle, big_x, big_w,
                                             &gflops));
  std::printf("planning query: 256->256 channel 3x3 layer -> %.0f Gflops "
              "modeled on one chip\n",
              gflops);
  api::destroy(paper_handle);

  CHECK_STATUS(api::destroy(handle));
  std::printf("handle destroyed — done.\n");
  return worst < 1e-10 ? 0 : 1;
}
