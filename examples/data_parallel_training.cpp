// Data-parallel training across simulated TaihuLight nodes: synchronous
// SGD with ring all-reduced gradients, plus the communication budget a
// real deployment would pay — the "scaling the training process" story
// the paper's introduction opens with.
//
// Usage: data_parallel_training [--nodes=4] [--steps=30]

#include <cstdio>
#include <memory>

#include "src/conv/swconv.h"
#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/parallel/data_parallel.h"
#include "src/util/cli.h"
#include "src/util/table.h"

namespace dnn = swdnn::dnn;
namespace parallel = swdnn::parallel;

int main(int argc, char** argv) {
  swdnn::util::CliArgs args(argc, argv);
  const int nodes = static_cast<int>(args.get_int("nodes", 4));
  const int steps = static_cast<int>(args.get_int("steps", 30));
  const std::int64_t shard_batch = 8;

  std::printf("synchronous SGD across %d simulated nodes, shard batch "
              "%lld (global %lld)\n\n",
              nodes, static_cast<long long>(shard_batch),
              static_cast<long long>(shard_batch * nodes));

  auto make_replica = [shard_batch] {
    swdnn::util::Rng rng(404);  // every replica identical
    auto net = std::make_unique<dnn::Network>();
    net->emplace<dnn::Convolution>(
        swdnn::conv::ConvShape::from_output(shard_batch, 1, 4, 6, 6, 3, 3),
        rng);
    net->emplace<dnn::Relu>();
    net->emplace<dnn::MaxPooling>(2);
    net->emplace<dnn::FullyConnected>(3 * 3 * 4, 4, rng);
    return net;
  };
  parallel::DataParallelTrainer trainer(nodes, make_replica, 0.2, 0.9);

  dnn::SyntheticBars data(8, 4, 0.05, 23);
  double last_loss = 0;
  std::int64_t correct = 0, samples = 0;
  for (int step = 1; step <= steps; ++step) {
    std::vector<dnn::Batch> shards;
    for (int node = 0; node < nodes; ++node) {
      shards.push_back(data.sample(shard_batch));
    }
    const auto result = trainer.train_step(shards);
    last_loss = result.loss;
    correct += result.correct;
    samples += shard_batch * nodes;
  }
  std::printf("after %d steps: loss %.4f, running accuracy %.2f, replica "
              "divergence %.1e (must be ~0)\n\n",
              steps, last_loss,
              static_cast<double>(correct) / static_cast<double>(samples),
              trainer.max_replica_divergence());

  // Communication budget at paper scale: a VGG-like model's gradients
  // all-reduced against one conv layer's compute per step.
  swdnn::conv::SwConvolution sw;
  const auto layer = swdnn::conv::ConvShape::from_output(128, 256, 256, 64,
                                                         64, 3, 3);
  const auto choice = sw.plan_for(layer);
  const double step_seconds =
      static_cast<double>(layer.flops()) /
      (sw.cycle_accounted_gflops_chip(layer, choice.plan) * 1e9);
  const std::int64_t vgg_gradient_bytes =
      static_cast<std::int64_t>(138e6) * 8;  // ~138M params, f64

  swdnn::util::TextTable table;
  table.set_header({"nodes", "allreduce ms", "compute ms/layer-step",
                    "parallel efficiency"});
  for (int n : {2, 4, 16, 64, 256}) {
    const double comm =
        parallel::ring_allreduce_seconds(vgg_gradient_bytes, n);
    table.add_row({std::to_string(n),
                   swdnn::util::fmt_double(comm * 1e3, 1),
                   swdnn::util::fmt_double(step_seconds * 1e3, 1),
                   swdnn::util::fmt_double(
                       100.0 * parallel::data_parallel_efficiency(
                                   step_seconds, vgg_gradient_bytes, n),
                       1) +
                       "%"});
  }
  std::printf("paper-scale budget (VGG-size gradients, one 256-channel "
              "conv layer per step):\n%s\n",
              table.render().c_str());
  std::printf("the ring's bandwidth term is node-count independent: once "
              "the gradient all-reduce costs more than a step's compute, "
              "adding nodes stops helping — the 'algorithmic "
              "difficulties' the paper's introduction refers to.\n");
  return 0;
}
