// Layer timing: estimate the per-layer and total conv time of a VGG-like
// network on the simulated SW26010 — the workflow of someone porting a
// real model to the machine. Uses the plan chooser per layer and prints
// the network's conv-time budget.
//
// Usage: layer_timing [--batch=128]

#include <cstdio>

#include "src/conv/swconv.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  namespace conv = swdnn::conv;
  swdnn::util::CliArgs args(argc, argv);
  const std::int64_t batch = args.get_int("batch", 128);

  // A VGG-flavoured conv stack (channels x output size), double
  // precision as the paper evaluates. Output sizes chosen so every
  // layer maps onto the mesh (64-divisible channels).
  struct LayerSpec {
    const char* name;
    std::int64_t ni, no, out;
  };
  const LayerSpec layers[] = {
      {"conv1_1", 64, 64, 64},  {"conv1_2", 64, 64, 64},
      {"conv2_1", 64, 128, 32}, {"conv2_2", 128, 128, 32},
      {"conv3_1", 128, 256, 16}, {"conv3_2", 256, 256, 16},
      {"conv4_1", 256, 384, 8},  {"conv4_2", 384, 384, 8},
  };

  conv::SwConvolution sw;
  swdnn::util::TextTable table;
  table.set_header({"layer", "shape", "plan", "Gflops/chip", "time (ms)",
                    "Gflop"});
  double total_time = 0, total_flops = 0;
  for (const auto& l : layers) {
    const auto shape =
        conv::ConvShape::from_output(batch, l.ni, l.no, l.out, l.out, 3, 3);
    const auto choice = sw.plan_for(shape);
    const double gflops = sw.cycle_accounted_gflops_chip(shape, choice.plan);
    const double seconds = static_cast<double>(shape.flops()) / (gflops * 1e9);
    total_time += seconds;
    total_flops += static_cast<double>(shape.flops());
    table.add_row({l.name,
                   std::to_string(l.ni) + "->" + std::to_string(l.no) + " @" +
                       std::to_string(l.out) + "x" + std::to_string(l.out),
                   choice.plan.to_string(),
                   swdnn::util::fmt_double(gflops, 0),
                   swdnn::util::fmt_double(seconds * 1e3, 2),
                   swdnn::util::fmt_double(
                       static_cast<double>(shape.flops()) / 1e9, 1)});
  }
  std::printf("VGG-like conv stack, batch %lld, double precision, one "
              "SW26010 (4 CGs):\n\n%s\n",
              static_cast<long long>(batch), table.render().c_str());
  std::printf("total: %.1f Gflop in %.2f ms -> %.0f Gflops sustained "
              "across the network\n",
              total_flops / 1e9, total_time * 1e3,
              total_flops / total_time / 1e9);
  return 0;
}
