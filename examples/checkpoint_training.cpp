// Checkpointed training: train, save, reload into a fresh network, and
// confirm the reloaded model picks up where the original stopped — the
// operational loop a multi-day supercomputer training run depends on.
//
// Usage: checkpoint_training [--steps=40] [--path=/tmp/swdnn_ckpt.bin]

#include <cstdio>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/serialize.h"
#include "src/dnn/trainer.h"
#include "src/util/cli.h"

namespace dnn = swdnn::dnn;

namespace {
dnn::Network build(swdnn::util::Rng& rng, std::int64_t batch) {
  dnn::Network net;
  net.emplace<dnn::Convolution>(
      swdnn::conv::ConvShape::from_output(batch, 1, 4, 6, 6, 3, 3), rng,
      dnn::ConvBackend::kHostIm2col, /*with_bias=*/true);
  net.emplace<dnn::Relu>();
  net.emplace<dnn::MaxPooling>(2);
  net.emplace<dnn::FullyConnected>(3 * 3 * 4, 4, rng);
  return net;
}
}  // namespace

int main(int argc, char** argv) {
  swdnn::util::CliArgs args(argc, argv);
  const int steps = static_cast<int>(args.get_int("steps", 40));
  const std::int64_t batch = 8;
  const std::string path = args.get("path", "/tmp/swdnn_ckpt.bin");

  swdnn::util::Rng rng(31);
  dnn::Network net = build(rng, batch);
  dnn::Sgd opt(0.2, 0.9);
  dnn::Trainer trainer(net, opt);
  dnn::SyntheticBars data(8, 4, 0.05, 17);

  std::printf("phase 1: training %d steps...\n", steps);
  const dnn::EpochStats phase1 = trainer.train_epoch(data, batch, steps);
  const double acc1 = trainer.evaluate(data, batch, 12);
  std::printf("  loss %.4f, held-out accuracy %.2f\n", phase1.mean_loss,
              acc1);

  std::printf("checkpointing to %s...\n", path.c_str());
  dnn::save_parameters(net, path);

  std::printf("phase 2: fresh process simulation — new network, load "
              "checkpoint...\n");
  swdnn::util::Rng rng2(777);  // different init, will be overwritten
  dnn::Network resumed = build(rng2, batch);
  dnn::SyntheticBars eval_data(8, 4, 0.05, 17);
  dnn::Sgd opt2(0.2, 0.9);
  dnn::Trainer trainer2(resumed, opt2);
  const double cold_acc = trainer2.evaluate(eval_data, batch, 12);
  dnn::load_parameters(resumed, path);
  const double warm_acc = trainer2.evaluate(eval_data, batch, 12);
  std::printf("  accuracy before load %.2f -> after load %.2f\n", cold_acc,
              warm_acc);

  std::printf("phase 3: resume training %d more steps...\n", steps / 2);
  const dnn::EpochStats phase3 =
      trainer2.train_epoch(eval_data, batch, steps / 2);
  const double final_acc = trainer2.evaluate(eval_data, batch, 12);
  std::printf("  loss %.4f, final accuracy %.2f\n", phase3.mean_loss,
              final_acc);

  std::remove(path.c_str());
  const bool ok = warm_acc > cold_acc - 0.05 && final_acc >= warm_acc - 0.1;
  std::printf("%s\n", ok ? "checkpoint round-trip OK"
                         : "checkpoint round-trip FAILED");
  return ok ? 0 : 1;
}
