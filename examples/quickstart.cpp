// Quickstart: run one convolution through the full swDNN stack.
//
//   1. describe the layer (paper Table I parameters),
//   2. let the performance model pick an execution plan,
//   3. execute it functionally on the simulated SW26010 mesh,
//   4. check the result against the naive reference,
//   5. print what the model predicts for the same layer at paper scale.
//
// Usage: quickstart [--mesh=2|4|8] [--batch=8]

#include <cstdio>

#include "src/conv/reference.h"
#include "src/conv/swconv.h"
#include "src/util/cli.h"
#include "src/util/rng.h"

int main(int argc, char** argv) {
  namespace conv = swdnn::conv;
  swdnn::util::CliArgs args(argc, argv);

  // A mesh you can afford to simulate functionally on a laptop.
  swdnn::arch::Sw26010Spec spec = swdnn::arch::default_spec();
  spec.mesh_rows = spec.mesh_cols = static_cast<int>(args.get_int("mesh", 4));

  const std::int64_t batch = args.get_int("batch", 8);
  const auto shape = conv::ConvShape::from_output(
      batch, /*ni=*/8, /*no=*/8, /*ro=*/6, /*co=*/6, /*kr=*/3, /*kc=*/3);
  std::printf("Layer: %s on a %dx%d simulated CPE mesh\n",
              shape.to_string().c_str(), spec.mesh_rows, spec.mesh_cols);

  // Fill input and filter with random data.
  swdnn::util::Rng rng(2024);
  auto input = conv::make_input(shape);
  auto filter = conv::make_filter(shape);
  rng.fill_uniform(input.data(), -1.0, 1.0);
  rng.fill_uniform(filter.data(), -1.0, 1.0);

  // Forward through swDNN: the chooser consults the performance model.
  conv::SwConvolution sw(spec);
  auto output = conv::make_output(shape);
  const conv::ForwardResult result = sw.forward(input, filter, output, shape);

  std::printf("Chosen plan: %s\n", result.choice.plan.to_string().c_str());
  std::printf("Executed %llu flops across %d CPEs; %llu bytes DMA, %llu "
              "bytes over register-communication buses\n",
              static_cast<unsigned long long>(result.stats.total_flops),
              spec.cpes_per_group(),
              static_cast<unsigned long long>(result.stats.dma.get_bytes +
                                              result.stats.dma.put_bytes),
              static_cast<unsigned long long>(result.stats.regcomm_bytes()));

  // Verify against the naive reference.
  auto expected = conv::make_output(shape);
  conv::reference_forward(input, filter, expected, shape);
  std::printf("max |diff| vs reference: %.3e %s\n",
              expected.max_abs_diff(output),
              expected.max_abs_diff(output) < 1e-10 ? "(OK)" : "(MISMATCH)");

  // What the model says about the same layer at paper scale (full
  // 8x8 mesh, B=128, 64x64 images).
  conv::SwConvolution paper_sw;
  const auto paper_shape =
      conv::ConvShape::from_output(128, 128, 128, 64, 64, 3, 3);
  const auto choice = paper_sw.plan_for(paper_shape);
  std::printf("\nAt paper scale (%s):\n", paper_shape.to_string().c_str());
  std::printf("  plan %s -> modeled %.0f Gflops/CG, %.0f Gflops/chip "
              "(%.0f%% of peak)\n",
              choice.plan.to_string().c_str(), choice.estimate.gflops_per_cg,
              choice.estimate.gflops_chip,
              100.0 * choice.estimate.gflops_chip /
                  paper_sw.spec().peak_gflops_per_chip());
  return 0;
}
