// Resilient serving demo: a multi-tenant inference server with an
// injected fault plan, showing dynamic batching, serve-level retry, the
// per-tenant circuit breaker isolating a misbehaving tenant, and the
// health/counter surface.
//
//   $ ./serving_demo
//
// Tenant 3's first few requests are forced to fault transiently (the
// server's retry absorbs them); tenant 4 faults persistently on every
// attempt, trips its breaker, and is refused at admission — while
// tenants 0..2 keep serving untouched.

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "src/dnn/convolution.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/network.h"
#include "src/dnn/relu.h"
#include "src/dnn/softmax.h"
#include "src/serve/server.h"
#include "src/util/rng.h"

using namespace std::chrono_literals;

namespace {

const std::vector<std::int64_t> kSampleDims = {8, 8, 3};

std::unique_ptr<swdnn::dnn::Network> make_model(std::int64_t batch) {
  using namespace swdnn;
  auto net = std::make_unique<dnn::Network>();
  util::Rng rng(777);
  conv::ConvShape c;
  c.batch = batch;
  c.ni = 3;
  c.no = 5;
  c.ri = 8;
  c.ci = 8;
  c.kr = 3;
  c.kc = 3;
  net->emplace<dnn::Convolution>(c, rng, dnn::ConvBackend::kHostIm2col,
                                 /*with_bias=*/true);
  net->emplace<dnn::Relu>();
  net->emplace<dnn::FullyConnected>(6 * 6 * 5, 10, rng);
  net->emplace<dnn::Softmax>();
  return net;
}

swdnn::tensor::Tensor make_sample(std::uint64_t seed) {
  swdnn::tensor::Tensor t(kSampleDims);
  swdnn::util::Rng rng(seed);
  rng.fill_uniform(t.data(), -1.0, 1.0);
  return t;
}

}  // namespace

int main() {
  using namespace swdnn::serve;

  // The chaos drill: tenant 3 transient (retry absorbs), tenant 4
  // persistent (fails fast, trips its breaker).
  ServeFaultPlan chaos;
  chaos.seed = 42;
  chaos.tenants[3] = TenantFaultProfile{.fail_first = 2};
  chaos.tenants[4] = TenantFaultProfile{.fail_rate = 1.0, .persistent = true};

  ServerConfig config;
  config.max_batch = 4;
  config.batch_budget = 500us;
  config.default_deadline = 2s;
  config.num_replicas = 2;
  config.max_attempts = 3;
  config.retry_backoff = 200us;
  config.breaker.failure_threshold = 3;
  config.breaker.open_duration = 50ms;
  config.request_faults = &chaos;

  InferenceServer server(make_model, kSampleDims, config);
  std::printf("serving demo: 5 tenants, chaos on tenants 3 (transient) and "
              "4 (persistent)\n\n");

  struct Entry {
    int tenant;
    std::future<ServeResult> future;
  };
  std::vector<Entry> entries;
  for (int round = 0; round < 4; ++round) {
    for (int tenant = 0; tenant < 5; ++tenant) {
      entries.push_back({tenant, server.submit(
                                     tenant, make_sample(
                                                 static_cast<std::uint64_t>(
                                                     round * 5 + tenant)))});
    }
  }

  std::printf("%7s %18s %18s %9s %12s\n", "tenant", "status", "reject",
              "attempts", "latency_ms");
  for (Entry& entry : entries) {
    const ServeResult result = entry.future.get();
    std::printf("%7d %18s %18s %9d %12.3f\n", entry.tenant,
                serve_status_name(result.status),
                reject_reason_name(result.reject_reason), result.attempts,
                result.latency_ms);
  }
  server.drain();

  const ServingCounters counters = server.counters();
  std::printf("\ncounters: submitted %llu admitted %llu completed %llu "
              "failed %llu retries %llu rejected %llu shed %llu "
              "deadline_missed %llu breaker_trips %llu chaos_injected %llu\n",
              static_cast<unsigned long long>(counters.submitted),
              static_cast<unsigned long long>(counters.admitted),
              static_cast<unsigned long long>(counters.completed),
              static_cast<unsigned long long>(counters.failed),
              static_cast<unsigned long long>(counters.retries),
              static_cast<unsigned long long>(counters.rejected()),
              static_cast<unsigned long long>(counters.shed),
              static_cast<unsigned long long>(counters.deadline_missed),
              static_cast<unsigned long long>(counters.breaker_trips),
              static_cast<unsigned long long>(counters.chaos_injected));
  for (int tenant = 3; tenant <= 4; ++tenant) {
    std::printf("tenant %d breaker: %s (%llu trip(s))\n", tenant,
                breaker_state_name(server.tenant_breaker(tenant)),
                static_cast<unsigned long long>(
                    server.tenant_breaker_trips(tenant)));
  }
  std::printf("health: %s\n", health_state_name(server.health()));
  server.stop();
  return 0;
}
