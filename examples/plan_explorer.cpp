// Plan explorer: interrogate the performance model for any layer shape —
// the tool a user reaches for before committing a network to the
// machine. Prints the ranked feasible plans with every model component
// (RBW, MBW, EE, the per-level bound factors, LDM footprint).
//
// Usage: plan_explorer [--batch=128] [--ni=128] [--no=256]
//                      [--out=64] [--k=3] [--top=8]

#include <cstdio>

#include "src/conv/swconv.h"
#include "src/util/cli.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  namespace conv = swdnn::conv;
  namespace perf = swdnn::perf;
  using swdnn::util::fmt_double;

  swdnn::util::CliArgs args(argc, argv);
  const auto shape = conv::ConvShape::from_output(
      args.get_int("batch", 128), args.get_int("ni", 128),
      args.get_int("no", 256), args.get_int("out", 64),
      args.get_int("out", 64), args.get_int("k", 3), args.get_int("k", 3));
  const auto top = static_cast<std::size_t>(args.get_int("top", 8));

  const auto& spec = swdnn::arch::default_spec();
  perf::PlanChooser chooser(spec);
  const auto ranked = chooser.rank(shape);

  std::printf("Plan exploration for %s\n", shape.to_string().c_str());
  std::printf("machine: %d CPEs/CG @ %.2f GHz, peak %.1f Gflops/CG, LDM "
              "%zu KB (%zu KB usable)\n\n",
              spec.cpes_per_group(), spec.cpe_clock_ghz,
              spec.peak_gflops_per_cg(), spec.ldm_bytes / 1024,
              (spec.ldm_bytes - spec.ldm_reserved_bytes) / 1024);

  swdnn::util::TextTable table;
  table.set_header({"rank", "plan", "RBW(MEM)", "MBW(MEM)", "mem^2",
                    "RBW(LDM)", "EE", "LDM KB", "Gflops/CG", "chip"});
  for (std::size_t i = 0; i < ranked.size() && i < top; ++i) {
    const auto& c = ranked[i];
    table.add_row(
        {std::to_string(i + 1), c.plan.to_string(),
         fmt_double(c.estimate.rbw_mem_gbs, 1),
         fmt_double(c.estimate.mbw_mem_gbs, 1),
         fmt_double(c.estimate.mem_factor, 2),
         fmt_double(c.estimate.rbw_ldm_gbs, 1),
         fmt_double(c.estimate.ee, 3),
         fmt_double(static_cast<double>(
                        perf::ldm_bytes_required(shape, c.plan, spec)) /
                        1024.0,
                    1),
         fmt_double(c.estimate.gflops_per_cg, 0),
         fmt_double(c.estimate.gflops_chip, 0)});
  }
  std::printf("%s\n", table.render().c_str());

  if (!ranked.empty()) {
    conv::SwConvolution sw;
    const auto& best = ranked.front();
    std::printf("best plan %s: model %.0f Gflops/CG; cycle-accounted "
                "(level 2) %.0f Gflops/CG; layer time %.2f ms on 4 CGs\n",
                best.plan.to_string().c_str(), best.estimate.gflops_per_cg,
                sw.cycle_accounted_gflops_per_cg(shape, best.plan),
                1e3 * best.estimate.seconds_for(shape.flops()));
  }
  return 0;
}
