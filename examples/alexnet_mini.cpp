// A miniature AlexNet-era pipeline exercising the full layer set the
// library ships: same-padded + strided convolutions with bias, LRN,
// max pooling, dropout (train/eval mode), tanh head — trained on the
// synthetic bars task and evaluated in eval mode.
//
// Usage: alexnet_mini [--steps=60] [--batch=8]

#include <cstdio>

#include "src/dnn/activations.h"
#include "src/dnn/convolution.h"
#include "src/dnn/dropout.h"
#include "src/dnn/fully_connected.h"
#include "src/dnn/lrn.h"
#include "src/dnn/network.h"
#include "src/dnn/padding.h"
#include "src/dnn/pooling.h"
#include "src/dnn/relu.h"
#include "src/dnn/trainer.h"
#include "src/util/cli.h"

namespace dnn = swdnn::dnn;

int main(int argc, char** argv) {
  swdnn::util::CliArgs args(argc, argv);
  const int steps = static_cast<int>(args.get_int("steps", 60));
  const std::int64_t batch = args.get_int("batch", 8);
  const int classes = 4;

  swdnn::util::Rng rng(2017);  // the paper's year, why not
  dnn::Network net;
  // 12x12x1 input.
  net.emplace<dnn::ZeroPad2d>(0, 1, 0, 1);  // -> 13x13
  net.emplace<dnn::Convolution>(  // stride-2 5x5 conv on 13x13 -> 5x5x6
      swdnn::conv::ConvShape::from_output(batch, 1, 6, 5, 5, 5, 5, 2, 2),
      rng, dnn::ConvBackend::kHostIm2col, /*with_bias=*/true);
  net.emplace<dnn::Relu>();
  net.emplace<dnn::Lrn>(3, 1e-3, 0.75, 2.0);
  net.emplace<dnn::ZeroPad2d>(0, 1, 0, 1);  // -> 6x6
  net.emplace<dnn::MaxPooling>(2);          // -> 3x3x6
  net.emplace<dnn::Convolution>(            // 3x3 conv -> 1x1x12
      swdnn::conv::ConvShape::from_output(batch, 6, 12, 1, 1, 3, 3), rng,
      dnn::ConvBackend::kHostIm2col, true);
  net.emplace<dnn::Tanh>();
  net.emplace<dnn::Dropout>(0.25, 99);
  net.emplace<dnn::FullyConnected>(12, classes, rng);

  dnn::Sgd opt(0.1, 0.9);
  dnn::Trainer trainer(net, opt);
  dnn::SyntheticBars data(12, classes, 0.05, 3);

  std::printf("mini-AlexNet: pad/conv(s2,bias)/relu/LRN/pool/conv/tanh/"
              "dropout/fc, batch %lld\n\n",
              static_cast<long long>(batch));
  net.set_training(true);
  const int report = std::max(1, steps / 6);
  double loss_acc = 0;
  for (int step = 1; step <= steps; ++step) {
    const dnn::Batch b = data.sample(batch);
    loss_acc += trainer.train_step(b).loss;
    if (step % report == 0) {
      std::printf("step %4d  mean loss %.4f\n", step, loss_acc / report);
      loss_acc = 0;
    }
  }

  net.set_training(false);  // dropout off for evaluation
  const double accuracy = trainer.evaluate(data, batch, 16);
  std::printf("\neval-mode held-out accuracy: %.2f (chance %.2f)\n",
              accuracy, 1.0 / classes);
  return accuracy > 1.5 / classes ? 0 : 1;
}
